// Tests for the fault-campaign harness: plan grammar round-trips, the
// injector's step/message pins, oracle detection of a known-bad plan,
// fault-plan shrinking, bit-identical seed replay, and a small healthy
// campaign sweep.

#include "campaign/runner.h"

#include <gtest/gtest.h>

#include "campaign/audit.h"
#include "campaign/shrink.h"
#include "core/system.h"
#include "trace/trace.h"
#include "workload/scenarios.h"

namespace o2pc::campaign {
namespace {

CampaignRunConfig SmallConfig(core::CommitProtocol protocol,
                              std::uint64_t seed) {
  CampaignRunConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.num_sites = 3;
  config.keys_per_site = 16;
  config.num_globals = 12;
  config.num_locals = 6;
  config.vote_abort_probability = 0.15;
  return config;
}

TEST(FaultPlanTest, RoundTripsThroughGrammar) {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kSiteCrashAtStep;
  crash.site = 2;
  crash.step = core::ProtocolStep::kCompensationBegin;
  crash.occurrence = 1;
  crash.duration = Millis(40);
  plan.events.push_back(crash);
  FaultEvent timed;
  timed.kind = FaultKind::kSiteCrashAtTime;
  timed.site = 0;
  timed.at = Millis(12);
  timed.duration = Millis(30);
  plan.events.push_back(timed);
  FaultEvent partition;
  partition.kind = FaultKind::kPartition;
  partition.site = 0;
  partition.peer = 1;
  partition.at = Millis(8);
  partition.duration = Millis(50);
  plan.events.push_back(partition);
  FaultEvent drop;
  drop.kind = FaultKind::kDropMessage;
  drop.msg_type = static_cast<int>(net::MessageType::kDecision);
  drop.msg_from = kInvalidSite;
  drop.msg_to = 2;
  drop.occurrence = 1;
  plan.events.push_back(drop);
  FaultEvent delay;
  delay.kind = FaultKind::kDelayMessage;
  delay.msg_type = -1;
  delay.msg_from = 1;
  delay.msg_to = kInvalidSite;
  delay.occurrence = 0;
  delay.duration = Millis(20);
  plan.events.push_back(delay);
  FaultEvent coordinator;
  coordinator.kind = FaultKind::kCoordinatorCrash;
  coordinator.occurrence = 2;
  plan.events.push_back(coordinator);

  const std::string text = plan.ToString();
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.events.size(), plan.events.size());
  EXPECT_EQ(parsed.ToString(), text);
}

TEST(FaultPlanTest, ParserIgnoresCommentsAndRejectsGarbage) {
  FaultPlan parsed;
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(
      "# a comment\n\ncoordinator_crash occurrence=0\n", &parsed, &error))
      << error;
  EXPECT_EQ(parsed.events.size(), 1u);

  EXPECT_FALSE(FaultPlan::Parse("explode site=1\n", &parsed, &error));
  EXPECT_FALSE(FaultPlan::Parse("crash site=1\n", &parsed, &error));
  EXPECT_FALSE(
      FaultPlan::Parse("crash site=1 step=bogus occurrence=0 outage_us=1\n",
                       &parsed, &error));
}

TEST(FaultPlanTest, TemplatesAreDeterministicPerSeed) {
  for (const std::string& name : DefaultTemplateNames()) {
    const FaultPlan a = GeneratePlan(name, 99, 4);
    const FaultPlan b = GeneratePlan(name, 99, 4);
    EXPECT_EQ(a.ToString(), b.ToString()) << name;
    if (name != "none") {
      EXPECT_FALSE(a.empty()) << name;
    } else {
      EXPECT_TRUE(a.empty());
    }
  }
  // Different seeds draw different schedules (for at least one template).
  EXPECT_NE(GeneratePlan("mixed", 1, 4).ToString(),
            GeneratePlan("mixed", 2, 4).ToString());
}

TEST(ArtifactTest, RoundTripsConfigAndPlan) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 7);
  config.template_name = "mixed";
  config.plan = GeneratePlan("mixed", 7, config.num_sites);
  const std::string text = ArtifactToString(config);
  CampaignRunConfig parsed;
  std::string error;
  ASSERT_TRUE(ParseArtifact(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.protocol, config.protocol);
  EXPECT_EQ(parsed.seed, config.seed);
  EXPECT_EQ(parsed.num_sites, config.num_sites);
  EXPECT_EQ(parsed.keys_per_site, config.keys_per_site);
  EXPECT_EQ(parsed.num_globals, config.num_globals);
  EXPECT_EQ(parsed.num_locals, config.num_locals);
  EXPECT_EQ(parsed.template_name, config.template_name);
  EXPECT_EQ(parsed.plan.ToString(), config.plan.ToString());

  EXPECT_FALSE(ParseArtifact("seed=1\n", &parsed, &error));  // no plan
}

TEST(InjectorTest, StepPinnedCrashFiresExactlyOnce) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 5);
  FaultEvent crash;
  crash.kind = FaultKind::kSiteCrashAtStep;
  crash.site = 0;
  crash.step = core::ProtocolStep::kLocalCommit;
  crash.occurrence = 0;
  crash.duration = Millis(50);
  config.plan.events.push_back(crash);

  const CampaignRunResult result = RunOne(config);
  EXPECT_EQ(result.faults_triggered, 1);
  EXPECT_EQ(result.site_crashes, 1u);
  // The site recovers and the retransmission safety net drains everything:
  // a survivable crash must not trip any oracle.
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
}

TEST(InjectorTest, CoordinatorCrashPinFires) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 6);
  FaultEvent crash;
  crash.kind = FaultKind::kCoordinatorCrash;
  crash.occurrence = 0;
  config.plan.events.push_back(crash);

  const CampaignRunResult result = RunOne(config);
  EXPECT_EQ(result.faults_triggered, 1);
  EXPECT_EQ(result.coordinator_crashes, 1u);
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
}

TEST(InjectorTest, MessageDropPinConsumesOneMessage) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 8);
  FaultEvent drop;
  drop.kind = FaultKind::kDropMessage;
  drop.msg_type = static_cast<int>(net::MessageType::kVoteRequest);
  drop.msg_from = kInvalidSite;
  drop.msg_to = kInvalidSite;
  drop.occurrence = 0;
  config.plan.events.push_back(drop);

  const CampaignRunResult result = RunOne(config);
  EXPECT_EQ(result.faults_triggered, 1);
  EXPECT_GE(result.messages_dropped, 1u);
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
}

TEST(OracleTest, KnownBadPlanIsCaught) {
  // Site 0 crashes forever at its first local commit: the exposed
  // subtransaction can never finalize or compensate. Both the trace
  // checker (I3) and the in-doubt audit must fire.
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 1);
  config.plan = KnownBadPlan(config.num_sites);
  const CampaignRunResult result = RunOne(config);
  ASSERT_FALSE(result.ok());
  bool saw_audit = false;
  bool saw_trace = false;
  for (const std::string& violation : result.oracle.violations) {
    if (violation.rfind("audit:", 0) == 0) saw_audit = true;
    if (violation.rfind("trace:", 0) == 0) saw_trace = true;
  }
  EXPECT_TRUE(saw_audit) << result.oracle.Summary();
  EXPECT_TRUE(saw_trace) << result.oracle.Summary();
}

TEST(ShrinkTest, KnownBadPlanShrinksToTheLethalEvent) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 1);
  config.plan = KnownBadPlan(config.num_sites);
  ASSERT_GE(config.plan.events.size(), 3u);  // lethal event + noise

  const ShrinkResult shrunk = ShrinkFaultPlan(config);
  EXPECT_TRUE(shrunk.reached_fixpoint);
  ASSERT_LE(shrunk.plan.events.size(), 2u);
  ASSERT_GE(shrunk.plan.events.size(), 1u);
  // The surviving event is the permanent step-pinned crash.
  const FaultEvent& survivor = shrunk.plan.events.front();
  EXPECT_EQ(survivor.kind, FaultKind::kSiteCrashAtStep);
  EXPECT_EQ(survivor.site, 0u);
  EXPECT_EQ(survivor.step, core::ProtocolStep::kLocalCommit);
  EXPECT_LE(survivor.duration, 0);
  // The shrunk plan still fails.
  CampaignRunConfig probe = config;
  probe.plan = shrunk.plan;
  EXPECT_FALSE(RunOne(probe).ok());
}

TEST(ReplayTest, SameSeedAndPlanYieldByteIdenticalJournals) {
  for (const core::CommitProtocol protocol :
       {core::CommitProtocol::kOptimistic,
        core::CommitProtocol::kTwoPhaseCommit}) {
    CampaignRunConfig config = SmallConfig(protocol, 21);
    config.plan = GeneratePlan("mixed", 21, config.num_sites);
    const CampaignRunResult first = RunOne(config);
    const CampaignRunResult second = RunOne(config);
    ASSERT_FALSE(first.journal.empty());
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.journal, second.journal);
    EXPECT_EQ(first.faults_triggered, second.faults_triggered);
    EXPECT_EQ(first.oracle.violations, second.oracle.violations);
  }
}

TEST(FaultPlanTest, CoordinatorOutageRoundTripsWithOutage) {
  FaultPlan plan = GeneratePlan("coordinator_outage", 5, 3);
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCoordinatorCrash);
  EXPECT_LT(plan.events[0].duration, 0);  // permanent

  FaultPlan reparsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(plan.ToString(), &reparsed, &error)) << error;
  ASSERT_EQ(reparsed.events.size(), 1u);
  EXPECT_EQ(reparsed.events[0].duration, plan.events[0].duration);
  EXPECT_EQ(reparsed.ToString(), plan.ToString());
  // A seed-era line without outage_us still parses (duration 0).
  ASSERT_TRUE(
      FaultPlan::Parse("coordinator_crash occurrence=1\n", &reparsed, &error))
      << error;
  EXPECT_EQ(reparsed.events[0].duration, 0);
}

TEST(OracleTest, PermanentCoordinatorOutageDrainsViaTermination) {
  // The liveness oracle's contract: a permanent coordinator outage may
  // orphan the crashed incarnation itself, but every participant must
  // still terminate (DECISION-REQ / cooperative termination) — under both
  // protocols.
  for (const core::CommitProtocol protocol :
       {core::CommitProtocol::kOptimistic,
        core::CommitProtocol::kTwoPhaseCommit}) {
    CampaignRunConfig config = SmallConfig(protocol, 9);
    config.plan = GeneratePlan("coordinator_outage", 9, config.num_sites);
    const CampaignRunResult result = RunOne(config);
    EXPECT_EQ(result.faults_triggered, 1);
    EXPECT_EQ(result.coordinator_crashes, 1u);
    EXPECT_TRUE(result.ok()) << result.oracle.Summary();
  }
}

TEST(OracleTest, LivenessOracleFlagsAnUnresolvableWedge) {
  // Same permanent outage, but with the termination protocol disarmed the
  // 2PC participants stay prepared forever: the liveness oracle (a wedged
  // subtransaction whose logged decision was recoverable) and the in-doubt
  // audit must both fire. RunOne arms termination unconditionally, so build
  // a single-transfer system by hand — the coordinator force-logs COMMIT,
  // vanishes for good, and nobody ever asks for the decision.
  core::SystemOptions options;
  options.num_sites = 3;
  options.keys_per_site = 16;
  options.seed = 13;
  options.protocol.protocol = core::CommitProtocol::kTwoPhaseCommit;
  // decision_timeout stays 0: no DECISION-REQ, no cooperative termination.
  core::DistributedSystem system(options);
  const Value initial_total = system.TotalValue();
  trace::TraceRecorder recorder;
  {
    trace::ScopedTrace scope(&recorder, &system.simulator());
    const TxnId id =
        system.SubmitGlobal(workload::MakeTransfer(1, 1, 2, 2, 10));
    system.InjectCoordinatorCrash(id, /*outage=*/-1);
    system.Run();
  }
  const OracleReport report =
      RunOracles(system, recorder.events(), initial_total);
  ASSERT_FALSE(report.ok());
  bool saw_liveness = false;
  bool saw_audit = false;
  for (const std::string& violation : report.violations) {
    if (violation.rfind("liveness:", 0) == 0) saw_liveness = true;
    if (violation.rfind("audit:", 0) == 0) saw_audit = true;
  }
  EXPECT_TRUE(saw_liveness) << report.Summary();
  EXPECT_TRUE(saw_audit) << report.Summary();
}

TEST(ReplayTest, CoordinatorOutageReplaysByteIdentically) {
  for (const core::CommitProtocol protocol :
       {core::CommitProtocol::kOptimistic,
        core::CommitProtocol::kTwoPhaseCommit}) {
    CampaignRunConfig config = SmallConfig(protocol, 33);
    config.plan = GeneratePlan("coordinator_outage", 33, config.num_sites);
    const CampaignRunResult first = RunOne(config);
    const CampaignRunResult second = RunOne(config);
    ASSERT_FALSE(first.journal.empty());
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.journal, second.journal);
    EXPECT_EQ(first.oracle.violations, second.oracle.violations);
  }
}

TEST(CampaignTest, HealthySweepPassesAllOracles) {
  CampaignOptions options;
  options.runs = 16;  // one full template cycle under both protocols
  options.base_seed = 3;
  options.num_sites = 3;
  options.keys_per_site = 16;
  options.num_globals = 12;
  options.num_locals = 6;
  const CampaignReport report = RunCampaign(options);
  EXPECT_EQ(report.runs_completed, 16);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.total_faults_triggered, 0u);
}

}  // namespace
}  // namespace o2pc::campaign
