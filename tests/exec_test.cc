// The parallel run executor and its determinism contract.
//
// Unit half: RunExecutor scheduling — index-ordered Map slots, every index
// exactly once, empty batches, more jobs than work, work stealing actually
// engaging on unbalanced batches, and exception propagation from a worker.
//
// Determinism half: the same campaign / experiment matrix executed at
// --jobs 1, 2, and 8 must produce byte-identical artifacts — journal
// fingerprints, per-run ToJson() bytes, merged stats, and exported trace
// JSONL. This is the acceptance test for the whole parallel subsystem: the
// executor may change *when and where* a run executes, never *what* it
// computes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/runner.h"
#include "exec/run_executor.h"
#include "harness/run_matrix.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace o2pc {
namespace {

// ---------------------------------------------------------------------------
// RunExecutor unit tests.

TEST(RunExecutorTest, MapCollectsIntoIndexOrderedSlots) {
  exec::RunExecutor executor(4);
  const std::vector<int> out =
      executor.Map<int>(17, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 17u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(RunExecutorTest, EveryIndexRunsExactlyOnce) {
  exec::RunExecutor executor(8);
  constexpr std::size_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  executor.ParallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(RunExecutorTest, EmptyBatchIsANoOp) {
  exec::RunExecutor executor(4);
  std::atomic<int> calls{0};
  executor.ParallelFor(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(executor.Map<int>(0, [](std::size_t) { return 1; }).empty());
}

TEST(RunExecutorTest, MoreJobsThanWork) {
  exec::RunExecutor executor(16);
  std::vector<std::atomic<int>> hits(3);
  executor.ParallelFor(3, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(RunExecutorTest, SerialExecutorRunsInIndexOrderInline) {
  exec::RunExecutor executor(1);
  EXPECT_EQ(executor.jobs(), 1);
  std::vector<std::size_t> order;
  executor.ParallelFor(10, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(executor.steals(), 0u);
}

TEST(RunExecutorTest, StealingEngagesOnUnbalancedBatches) {
  // Two chunks: the caller's chunk is slow (1ms per task), the worker's is
  // instant — the worker must drain its own half and steal from the back of
  // the caller's.
  exec::RunExecutor executor(2);
  constexpr std::size_t kN = 40;
  std::vector<std::atomic<int>> hits(kN);
  executor.ParallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    if (i < kN / 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_GT(executor.steals(), 0u);
}

TEST(RunExecutorTest, WorkerExceptionPropagatesToCaller) {
  exec::RunExecutor executor(4);
  EXPECT_THROW(
      executor.ParallelFor(64,
                           [](std::size_t i) {
                             if (i == 13) throw std::runtime_error("boom 13");
                           }),
      std::runtime_error);
  // The pool survives the failed batch and runs the next one normally.
  std::atomic<int> calls{0};
  executor.ParallelFor(8, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

TEST(RunExecutorTest, LowestIndexErrorWins) {
  exec::RunExecutor executor(1);  // serial: deterministic first failure
  try {
    executor.ParallelFor(16, [](std::size_t i) {
      if (i == 3 || i == 9) {
        throw std::runtime_error("fail " + std::to_string(i));
      }
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail 3");
  }
}

TEST(JobsFromArgsTest, ParsesEveryFlagSpelling) {
  auto parse = [](std::vector<const char*> argv) {
    return harness::JobsFromArgs(static_cast<int>(argv.size()),
                                 const_cast<char**>(argv.data()));
  };
  EXPECT_EQ(parse({"bench"}), 1);
  EXPECT_EQ(parse({"bench", "--jobs", "4"}), 4);
  EXPECT_EQ(parse({"bench", "--jobs=8"}), 8);
  EXPECT_EQ(parse({"bench", "-j", "2"}), 2);
  EXPECT_EQ(parse({"bench", "-j6"}), 6);
  EXPECT_EQ(parse({"bench", "--other", "--jobs=3"}), 3);
  // 0 = one job per hardware thread.
  EXPECT_EQ(parse({"bench", "--jobs", "0"}), exec::RunExecutor::HardwareJobs());
}

// ---------------------------------------------------------------------------
// Determinism: identical artifacts for every job count.

campaign::CampaignOptions SmallCampaign(int jobs) {
  campaign::CampaignOptions options;
  options.runs = 12;
  options.base_seed = 77;
  options.jobs = jobs;
  options.num_sites = 3;
  options.num_globals = 12;
  options.num_locals = 6;
  options.shrink_failures = false;
  return options;
}

TEST(ParallelDeterminismTest, CampaignFingerprintsIdenticalAcrossJobCounts) {
  const campaign::CampaignReport serial =
      campaign::RunCampaign(SmallCampaign(1));
  ASSERT_EQ(serial.runs_completed, 12);
  ASSERT_EQ(serial.fingerprints.size(), 12u);

  for (int jobs : {2, 8}) {
    const campaign::CampaignReport parallel =
        campaign::RunCampaign(SmallCampaign(jobs));
    EXPECT_EQ(parallel.runs_completed, serial.runs_completed) << jobs;
    EXPECT_EQ(parallel.runs_failed, serial.runs_failed) << jobs;
    EXPECT_EQ(parallel.total_faults_triggered, serial.total_faults_triggered)
        << jobs;
    // The journals themselves, run by run, in sweep order.
    EXPECT_EQ(parallel.fingerprints, serial.fingerprints) << jobs;
    EXPECT_EQ(parallel.CombinedFingerprint(), serial.CombinedFingerprint())
        << jobs;
  }
}

harness::ExperimentConfig SmallExperiment(std::uint64_t seed,
                                          core::CommitProtocol protocol) {
  harness::ExperimentConfig config;
  config.label = "run";
  config.system.num_sites = 3;
  config.system.keys_per_site = 32;
  config.system.seed = seed;
  config.system.protocol.protocol = protocol;
  config.workload.num_global_txns = 20;
  config.workload.num_local_txns = 10;
  config.workload.min_sites_per_txn = 2;
  config.workload.max_sites_per_txn = 2;
  config.workload.vote_abort_probability = 0.1;
  config.workload.seed = seed * 31 + 1;
  config.analyze = true;
  return config;
}

std::vector<harness::RunResult> RunSmallMatrix(int jobs) {
  harness::RunMatrix matrix(jobs);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    matrix.Add(SmallExperiment(seed, core::CommitProtocol::kOptimistic));
    matrix.Add(SmallExperiment(seed, core::CommitProtocol::kTwoPhaseCommit));
  }
  return matrix.RunAll();
}

TEST(ParallelDeterminismTest, RunMatrixJsonBytesIdenticalAcrossJobCounts) {
  const std::vector<harness::RunResult> serial = RunSmallMatrix(1);
  ASSERT_EQ(serial.size(), 6u);
  for (int jobs : {2, 8}) {
    const std::vector<harness::RunResult> parallel = RunSmallMatrix(jobs);
    ASSERT_EQ(parallel.size(), serial.size()) << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Byte-for-byte: every metric the bench JSON artifacts are built from.
      EXPECT_EQ(parallel[i].ToJson(), serial[i].ToJson())
          << "jobs=" << jobs << " run=" << i;
    }
  }
}

TEST(ParallelDeterminismTest, TraceJournalsIdenticalWhenRunsShareAPool) {
  // Each parallel run installs its own recorder via the thread-local active
  // slot; the exported JSONL must match a serial run of the same config.
  auto run_with_jobs = [](int jobs) {
    std::vector<trace::TraceRecorder> recorders(4);
    harness::RunMatrix matrix(jobs);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      harness::ExperimentConfig config =
          SmallExperiment(seed, core::CommitProtocol::kOptimistic);
      config.recorder = &recorders[seed - 1];
      matrix.Add(config);
    }
    matrix.RunAll();
    std::vector<std::string> journals;
    for (const trace::TraceRecorder& recorder : recorders) {
      std::ostringstream out;
      trace::ExportJsonl(recorder.events(), out);
      journals.push_back(out.str());
    }
    return journals;
  };
  const std::vector<std::string> serial = run_with_jobs(1);
  const std::vector<std::string> parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
#ifndef O2PC_TRACE_DISABLED
    EXPECT_GT(serial[i].size(), 0u) << i;
#endif
    EXPECT_EQ(serial[i], parallel[i]) << "journal " << i;
  }
}

}  // namespace
}  // namespace o2pc
