// Unit tests for the common layer: Status/Result, RNG distributions,
// string/duration formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/types.h"

namespace o2pc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status status = Status::Deadlock("cycle of 3");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsDeadlock());
  EXPECT_EQ(status.code(), StatusCode::kDeadlock);
  EXPECT_EQ(status.ToString(), "Deadlock: cycle of 3");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted() == Status::Deadlock());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("k");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> result = Status::OK();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, BernoulliMatchesProbabilityRoughly) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(12);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(5);
  Rng fork = a.Fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == fork.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  Rng rng(13);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfTest, HighThetaSkewsToLowIndexes) {
  Rng rng(14);
  ZipfGenerator zipf(100, 1.2);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 5) ++head;
  }
  // The hottest 5% of keys should draw well over half the accesses.
  EXPECT_GT(head, n / 2);
}

TEST(ZipfTest, SamplesStayInRange) {
  Rng rng(15);
  ZipfGenerator zipf(7, 0.9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

TEST(StringUtilTest, StrCatConcatenates) {
  EXPECT_EQ(StrCat("T", 42, "@", 1.5), "T42@1.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, JoinInsertsSeparators) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringUtilTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(500), "500us");
  EXPECT_EQ(FormatDuration(1500), "1.50ms");
  EXPECT_EQ(FormatDuration(2'500'000), "2.500s");
}

TEST(TypesTest, TxnLabels) {
  EXPECT_EQ(TxnLabel(TxnKind::kGlobal, 7), "T7");
  EXPECT_EQ(TxnLabel(TxnKind::kCompensating, 7), "CT7");
  EXPECT_EQ(TxnLabel(TxnKind::kLocal, 12), "L12");
}

TEST(TypesTest, DurationHelpers) {
  EXPECT_EQ(Millis(3), 3000);
  EXPECT_EQ(Seconds(2), 2'000'000);
  EXPECT_EQ(Micros(9), 9);
}

}  // namespace
}  // namespace o2pc
