// Unit tests for the §6 marking machinery: the compatible() check of rule
// R1 under P1 / P2 / P2-literal / Simple, transmark accumulation, UDUM1
// witness knowledge, and the Figure-2 mark transitions as driven by the
// real protocol.

#include "core/marking.h"

#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/scenarios.h"

namespace o2pc::core {
namespace {

SiteMarks UndoneWrt(std::initializer_list<TxnId> ids) {
  SiteMarks marks;
  marks.undone.insert(ids.begin(), ids.end());
  return marks;
}

SiteMarks LcWrt(std::initializer_list<TxnId> ids) {
  SiteMarks marks;
  marks.locally_committed.insert(ids.begin(), ids.end());
  return marks;
}

/// transmarks of a transaction that visited sites 100, 101, ... (n sites).
TransMarks Visited(int n) {
  TransMarks tm;
  for (int i = 0; i < n; ++i) {
    tm.visited_sites.push_back(static_cast<SiteId>(100 + i));
  }
  return tm;
}

/// Records that `ti` was seen undone at the first `count` visited sites.
void SeenUndone(TransMarks& tm, TxnId ti, int count) {
  for (int i = 0; i < count; ++i) tm.undone_seen[ti].insert(tm.visited_sites[i]);
}

/// Records that `ti` was seen locally-committed at the first `count` sites.
void SeenLc(TransMarks& tm, TxnId ti, int count) {
  for (int i = 0; i < count; ++i) tm.lc_seen[ti].insert(tm.visited_sites[i]);
}

// --- P1 -------------------------------------------------------------------

TEST(CompatibleP1Test, FirstSiteAlwaysCompatible) {
  EXPECT_TRUE(Compatible(GovernancePolicy::kP1, TransMarks{}, SiteMarks{}));
  EXPECT_TRUE(
      Compatible(GovernancePolicy::kP1, TransMarks{}, UndoneWrt({1, 2})));
}

TEST(CompatibleP1Test, SeenUndoneRequiresUndoneHere) {
  TransMarks tm = Visited(1);
  SeenUndone(tm, 1, 1);
  EXPECT_TRUE(Compatible(GovernancePolicy::kP1, tm, UndoneWrt({1})));
  // The forward half of R1: transmarks must be a subset of sitemarks.
  EXPECT_FALSE(Compatible(GovernancePolicy::kP1, tm, SiteMarks{}));
}

TEST(CompatibleP1Test, UnmarkedFirstThenUndoneRejected) {
  // The backward half (the §6.2 example resolvable only by aborting):
  // visited one site that was NOT undone w.r.t. T1; a site undone w.r.t.
  // T1 is now incompatible.
  TransMarks tm = Visited(1);
  EXPECT_FALSE(Compatible(GovernancePolicy::kP1, tm, UndoneWrt({1})));
}

TEST(CompatibleP1Test, UniformUndoneAcrossManySites) {
  TransMarks tm = Visited(3);
  SeenUndone(tm, 1, 3);
  EXPECT_TRUE(Compatible(GovernancePolicy::kP1, tm, UndoneWrt({1})));
  EXPECT_FALSE(Compatible(GovernancePolicy::kP1, tm, UndoneWrt({2})));
}

TEST(CompatibleP1Test, LcMarksIrrelevantToP1) {
  // The paper drops the locally-committed marking for P1 entirely.
  TransMarks tm = Visited(1);
  EXPECT_TRUE(Compatible(GovernancePolicy::kP1, tm, LcWrt({3})));
}

// --- P2 literal and strengthened -------------------------------------------

TEST(CompatibleP2Test, LiteralAllowsUndoneUnmarkedMix) {
  TransMarks tm = Visited(1);  // previous site unmarked w.r.t. everything
  EXPECT_TRUE(
      Compatible(GovernancePolicy::kP2Literal, tm, UndoneWrt({1})));
  // The strengthened P2 inherits P1's rejection of this mix.
  EXPECT_FALSE(Compatible(GovernancePolicy::kP2, tm, UndoneWrt({1})));
}

TEST(CompatibleP2Test, SeenLcRequiresLcHere) {
  TransMarks tm = Visited(1);
  SeenLc(tm, 1, 1);
  EXPECT_TRUE(Compatible(GovernancePolicy::kP2Literal, tm, LcWrt({1})));
  EXPECT_FALSE(Compatible(GovernancePolicy::kP2Literal, tm, SiteMarks{}));
}

TEST(CompatibleP2Test, LcHereRequiresLcEverywhereBefore) {
  TransMarks tm = Visited(2);
  SeenLc(tm, 1, 1);  // only one of two previous sites was LC w.r.t. T1
  EXPECT_FALSE(Compatible(GovernancePolicy::kP2Literal, tm, LcWrt({1})));
  SeenLc(tm, 1, 2);
  EXPECT_TRUE(Compatible(GovernancePolicy::kP2Literal, tm, LcWrt({1})));
}

TEST(CompatibleP2Test, FirstSiteVacuouslyCompatible) {
  EXPECT_TRUE(
      Compatible(GovernancePolicy::kP2Literal, TransMarks{}, LcWrt({5})));
}

// --- Simple -----------------------------------------------------------------

TEST(CompatibleSimpleTest, RejectsAnyLcMark) {
  EXPECT_FALSE(
      Compatible(GovernancePolicy::kSimple, TransMarks{}, LcWrt({1})));
}

TEST(CompatibleSimpleTest, RequiresIdenticalUndoneSets) {
  TransMarks tm = Visited(1);
  SeenUndone(tm, 1, 1);
  EXPECT_TRUE(Compatible(GovernancePolicy::kSimple, tm, UndoneWrt({1})));
  // Extra mark at the new site breaks set equality.
  EXPECT_FALSE(
      Compatible(GovernancePolicy::kSimple, tm, UndoneWrt({1, 2})));
  // Missing mark does too.
  EXPECT_FALSE(Compatible(GovernancePolicy::kSimple, tm, SiteMarks{}));
}

TEST(CompatibleSimpleTest, NoneGovernanceAllowsEverything) {
  TransMarks tm = Visited(5);
  SeenUndone(tm, 1, 2);
  EXPECT_TRUE(Compatible(GovernancePolicy::kNone, tm, UndoneWrt({9})));
}

// --- MergeMarks --------------------------------------------------------------

TEST(MergeMarksTest, AccumulatesSeenSitesAndVisits) {
  TransMarks tm;
  MergeMarks(UndoneWrt({1, 2}), /*site=*/4, tm);
  SiteMarks second = UndoneWrt({1});
  second.locally_committed.insert(7);
  MergeMarks(second, /*site=*/5, tm);
  EXPECT_EQ(tm.visited(), 2);
  EXPECT_EQ(tm.UndoneCount(1), 2);
  EXPECT_EQ(tm.UndoneCount(2), 1);
  EXPECT_EQ(tm.LcCount(7), 1);
  EXPECT_TRUE(tm.undone_seen[1].contains(4));
  EXPECT_TRUE(tm.undone_seen[1].contains(5));
  EXPECT_NE(tm.ToString().find("visited=2"), std::string::npos);
}

// --- WitnessKnowledge / UDUM1 -----------------------------------------------

TEST(WitnessKnowledgeTest, CoversRequiresAllExecutionSites) {
  WitnessKnowledge knowledge;
  knowledge.Add(WitnessFact{5, 0});
  EXPECT_FALSE(knowledge.Covers(5, {0, 1}));
  knowledge.Add(WitnessFact{5, 1});
  EXPECT_TRUE(knowledge.Covers(5, {0, 1}));
  EXPECT_FALSE(knowledge.Covers(5, {}));  // unknown exec sites: never
  EXPECT_FALSE(knowledge.Covers(6, {0}));
}

TEST(WitnessKnowledgeTest, RetiredNeedsExecSitesAndFullCoverage) {
  WitnessKnowledge knowledge;
  knowledge.Add(WitnessFact{5, 0});
  knowledge.Add(WitnessFact{5, 1});
  EXPECT_FALSE(knowledge.Retired(5));  // exec sites unknown
  knowledge.SetExecSites(5, {0, 1});
  EXPECT_TRUE(knowledge.Retired(5));
  knowledge.SetExecSites(6, {0, 2});
  EXPECT_FALSE(knowledge.Retired(6));  // site 2 unwitnessed
  // Exec-site lists and witness facts survive a gossip round trip.
  WitnessKnowledge other;
  other.Merge(knowledge.Export());
  EXPECT_TRUE(other.Retired(5));
  ASSERT_NE(other.ExecSitesOf(6), nullptr);
  EXPECT_EQ(other.ExecSitesOf(6)->size(), 2u);
}

TEST(WitnessKnowledgeTest, GossipRoundTrip) {
  WitnessKnowledge a;
  a.Add(WitnessFact{1, 0});
  a.Add(WitnessFact{1, 1});
  WitnessKnowledge b;
  b.Merge(a.Export());
  EXPECT_TRUE(b.Covers(1, {0, 1}));
  EXPECT_EQ(b.size(), 2u);
}

TEST(WitnessKnowledgeTest, ExportCacheInvalidatedByEveryMutation) {
  WitnessKnowledge a;
  a.Add(WitnessFact{1, 0});
  // Consecutive exports without a mutation share one snapshot.
  auto snapshot = a.Export();
  EXPECT_EQ(a.Export(), snapshot);
  // Each mutation kind must produce a fresh snapshot carrying the news.
  a.Add(WitnessFact{2, 0});
  auto after_add = a.Export();
  EXPECT_NE(after_add, snapshot);
  EXPECT_EQ(after_add->witnesses.size(), 2u);
  a.SetExecSites(2, {0});
  auto after_exec = a.Export();
  EXPECT_NE(after_exec, after_add);
  ASSERT_EQ(after_exec->exec_sites.size(), 1u);
  // A merge that brings new facts invalidates too...
  WitnessKnowledge b;
  b.Add(WitnessFact{3, 1});
  auto b_snapshot = b.Export();
  b.Merge(a.Export());
  EXPECT_NE(b.Export(), b_snapshot);
  EXPECT_EQ(b.size(), 3u);
  // ...but a stale merge (nothing new) keeps the cached snapshot, and a
  // receiver that already merged a snapshot still learns facts exported
  // after the source mutates again.
  auto b_current = b.Export();
  b.Merge(a.Export());
  EXPECT_EQ(b.Export(), b_current);
  a.Add(WitnessFact{9, 3});
  b.Merge(a.Export());
  EXPECT_TRUE(b.Covers(9, {3}));
}

// --- Figure 2: mark transitions driven by the real protocol -------------------

class MarkTransitionTest : public ::testing::Test {
 protected:
  static SystemOptions Options(GovernancePolicy policy) {
    SystemOptions options;
    options.num_sites = 2;
    options.keys_per_site = 16;
    options.seed = 3;
    options.protocol.governance = policy;
    return options;
  }
};

TEST_F(MarkTransitionTest, VoteCommitThenDecisionCommitLeavesUnmarked) {
  DistributedSystem system(Options(GovernancePolicy::kP2));
  const TxnId id =
      system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10));
  system.Run();
  // Figure 2: unmarked -> locally-committed -> (decision commit) ->
  // unmarked.
  EXPECT_TRUE(system.participant(0).marks().Unmarked(id));
  EXPECT_TRUE(system.participant(1).marks().Unmarked(id));
}

TEST_F(MarkTransitionTest, DecisionAbortLeavesUndoneAtBothKindsOfSites) {
  DistributedSystem system(Options(GovernancePolicy::kP1));
  GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 10);
  spec.subtxns[1].force_abort_vote = true;
  const TxnId id = system.SubmitGlobal(spec);
  system.Run();
  // Site 0 locally committed and was compensated (R2: undone at CT end);
  // site 1 voted abort and rolled back (vote-abort -> undone).
  EXPECT_TRUE(system.participant(0).marks().undone.contains(id));
  EXPECT_TRUE(system.participant(1).marks().undone.contains(id));
}

TEST_F(MarkTransitionTest, UdumWitnessesEventuallyUnmark) {
  SystemOptions options = Options(GovernancePolicy::kP1);
  options.protocol.directory = DirectoryMode::kOracle;
  DistributedSystem system(options);
  GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 10);
  spec.subtxns[1].force_abort_vote = true;
  const TxnId id = system.SubmitGlobal(spec);
  system.Run();
  ASSERT_TRUE(system.participant(0).marks().undone.contains(id));
  // A witness transaction at each execution site satisfies UDUM1; with the
  // oracle directory both sites unmark as soon as the facts exist.
  system.SubmitLocal(0, {local::Operation{local::OpType::kIncrement, 1, 1},
                         local::Operation{local::OpType::kIncrement, 2, -1}});
  system.SubmitLocal(1, {local::Operation{local::OpType::kIncrement, 1, 1},
                         local::Operation{local::OpType::kIncrement, 2, -1}});
  system.Run();
  // One more access evaluates R3 at each site.
  system.SubmitLocal(0, {local::Operation{local::OpType::kRead, 1, 0}});
  system.SubmitLocal(1, {local::Operation{local::OpType::kRead, 1, 0}});
  system.Run();
  EXPECT_FALSE(system.participant(0).marks().undone.contains(id));
  EXPECT_FALSE(system.participant(1).marks().undone.contains(id));
  EXPECT_GE(system.stats().Count("udum_unmarks"), 2u);
}

TEST_F(MarkTransitionTest, TwoPcNeverMarks) {
  SystemOptions options = Options(GovernancePolicy::kP1);
  options.protocol.protocol = CommitProtocol::kTwoPhaseCommit;
  DistributedSystem system(options);
  GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 10);
  spec.subtxns[1].force_abort_vote = true;
  const TxnId id = system.SubmitGlobal(spec);
  system.Run();
  EXPECT_TRUE(system.participant(0).marks().Unmarked(id));
  EXPECT_TRUE(system.participant(1).marks().Unmarked(id));
}

}  // namespace
}  // namespace o2pc::core
