// Coordinator-focused tests: the decision log, exposure computation,
// serial invocation order, early aborts, restartability classification.

#include "core/coordinator.h"

#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/scenarios.h"

namespace o2pc::core {
namespace {

SystemOptions BaseOptions() {
  SystemOptions options;
  options.num_sites = 3;
  options.keys_per_site = 16;
  options.seed = 13;
  return options;
}

TEST(CoordinatorTest, DecisionIsForceLoggedBeforeBroadcast) {
  DistributedSystem system(BaseOptions());
  const TxnId id =
      system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10));
  system.Run();
  // Reach inside: the coordinator's log holds a commit decision. (We find
  // it via the system's coordinator registry indirectly: commit happened.)
  EXPECT_EQ(system.stats().Count("decisions_commit"), 1u);
  EXPECT_EQ(system.db(0).table().Get(1)->value, 990);
  (void)id;
}

TEST(CoordinatorTest, AbortVoteYieldsNonRestartableAbort) {
  DistributedSystem system(BaseOptions());
  GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 10);
  spec.subtxns[0].force_abort_vote = true;
  GlobalResult result;
  system.SubmitGlobal(spec, [&](const GlobalResult& r) { result = r; });
  system.Run();
  EXPECT_FALSE(result.committed);
  EXPECT_FALSE(result.restartable);
  EXPECT_TRUE(result.status.IsAborted());
  EXPECT_EQ(system.stats().Count("decisions_abort"), 1u);
  // No restarts were attempted for a genuine business abort.
  EXPECT_EQ(system.stats().Count("global_restarts"), 0u);
}

TEST(CoordinatorTest, SubtxnsInvokedSerially) {
  // With serial invocation, site 1's subtransaction must start only after
  // site 0's ack returned — observable through the invoke message count at
  // the halfway point.
  SystemOptions options = BaseOptions();
  options.network.base_latency = Millis(10);
  options.network.jitter = 0;
  DistributedSystem system(options);
  // Three sites; the coordinator lives at site 0 (loopback), so the
  // observable serialization is between the two *remote* invokes: site 2's
  // invoke may only go out after site 1's ack returned (a 20ms round
  // trip).
  system.SubmitGlobal(
      workload::MakeTripBooking(0, 1, 1, 2, 2, 3, /*print_ticket=*/false));
  system.simulator().RunUntil(Millis(15));
  EXPECT_EQ(system.network().stats().sent(net::MessageType::kSubtxnInvoke),
            2u);
  system.Run();
  EXPECT_EQ(system.network().stats().sent(net::MessageType::kSubtxnInvoke),
            3u);
}

TEST(CoordinatorTest, EarlyAbortSendsDecisionToFailedSiteToo) {
  // A mid-execution failure at the second site must still produce a
  // DECISION(abort) for both invoked sites (the failed one included, so it
  // learns exec_sites for UDUM bookkeeping).
  SystemOptions options = BaseOptions();
  options.lock_wait_timeout = Millis(10);
  DistributedSystem system(options);
  options.max_global_restarts = 0;
  // A local transaction camps on site 1's key 2, timing out the global's
  // second subtransaction.
  const TxnId camper = system.ids().Next();
  system.db(1).Begin(camper, TxnKind::kLocal);
  system.db(1).Execute(camper, {local::OpType::kIncrement, 2, 1},
                       [](Result<Value>) {});
  GlobalResult result;
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10),
                      [&](const GlobalResult& r) { result = r; });
  system.simulator().RunUntil(Millis(200));
  // Two decisions (one per invoked site) for the first incarnation at
  // least; restarts may add more. The failed site acked the decision.
  EXPECT_GE(system.network().stats().sent(net::MessageType::kDecision), 2u);
  system.db(1).CommitLocal(camper);
  system.Run();
  EXPECT_TRUE(result.committed);  // a restart eventually succeeds
}

TEST(CoordinatorTest, DeadlockFailureIsRestartable) {
  SystemOptions options = BaseOptions();
  options.lock_wait_timeout = Millis(10);
  options.max_global_restarts = 0;  // observe the raw failure
  DistributedSystem system(options);
  const TxnId camper = system.ids().Next();
  system.db(1).Begin(camper, TxnKind::kLocal);
  system.db(1).Execute(camper, {local::OpType::kIncrement, 2, 1},
                       [](Result<Value>) {});
  GlobalResult result;
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10),
                      [&](const GlobalResult& r) { result = r; });
  system.simulator().RunUntil(Millis(500));
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.restartable);
  system.db(1).CommitLocal(camper);
  system.Run();
}

TEST(CoordinatorTest, CrashStatsAndRecoveryResend) {
  SystemOptions options = BaseOptions();
  options.protocol.coordinator_crash_probability = 1.0;
  options.protocol.coordinator_recovery_delay = Millis(100);
  DistributedSystem system(options);
  int commits = 0;
  for (int i = 0; i < 5; ++i) {
    system.SubmitGlobal(
        workload::MakeTransfer(0, static_cast<DataKey>(i), 1,
                               static_cast<DataKey>(i), 1),
        [&](const GlobalResult& r) {
          if (r.committed) ++commits;
        });
  }
  system.Run();
  EXPECT_EQ(commits, 5);
  EXPECT_EQ(system.stats().Count("coordinator_crashes"), 5u);
}

}  // namespace
}  // namespace o2pc::core
