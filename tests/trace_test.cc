// Tests for the protocol event tracing subsystem: the recorder and emit
// points (exact deterministic journal of a two-site O2PC abort), the
// exporters, and the trace-driven invariant checker — both that it passes
// on real O2PC / 2PC runs and that it catches deliberately corrupted
// journals.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.h"
#include "harness/experiment.h"
#include "trace/checker.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "workload/scenarios.h"

namespace o2pc::trace {
namespace {

// ---------------------------------------------------------------------------
// Scenario builders.

/// Runs one two-site transfer where the remote site votes abort, under the
/// given protocol, with a jitter-free network so the event order is exactly
/// reproducible, and returns the recorded journal.
std::vector<TraceEvent> RecordAbortRun(core::CommitProtocol protocol) {
  core::SystemOptions options;
  options.num_sites = 2;
  options.keys_per_site = 16;
  options.seed = 7;
  options.network.jitter = 0;  // deterministic delivery order
  options.protocol.protocol = protocol;
  core::DistributedSystem system(options);
  TraceRecorder recorder;
  {
    ScopedTrace scope(&recorder, &system.simulator());
    core::GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 10);
    spec.subtxns[1].force_abort_vote = true;
    system.SubmitGlobal(spec);
    system.Run();
  }
  return recorder.events();
}

/// A small contended multi-site workload (mirrors the harness tests) with a
/// recorder attached through ExperimentConfig.
harness::RunResult RunTracedWorkload(core::CommitProtocol protocol,
                                     TraceRecorder& recorder) {
  harness::ExperimentConfig config;
  config.system.num_sites = 3;
  config.system.keys_per_site = 32;
  config.system.seed = 11;
  config.system.protocol.protocol = protocol;
  config.workload.num_global_txns = 40;
  config.workload.num_local_txns = 40;
  config.workload.min_sites_per_txn = 2;
  config.workload.max_sites_per_txn = 3;
  config.workload.ops_per_subtxn = 3;
  config.workload.vote_abort_probability = 0.25;
  config.workload.zipf_theta = 0.6;
  config.workload.mean_global_interarrival = Millis(8);
  config.workload.mean_local_interarrival = Millis(4);
  config.workload.seed = 13;
  config.analyze = false;
  config.recorder = &recorder;
  return harness::RunExperiment(config);
}

/// The protocol-plane journal as "event@site" strings, dropping the chatty
/// planes (messages, locks) so the expected sequence stays readable.
std::vector<std::string> ProtocolPlane(const std::vector<TraceEvent>& events) {
  std::vector<std::string> out;
  for (const TraceEvent& event : events) {
    switch (event.type) {
      case EventType::kTxnSubmit:
      case EventType::kSubtxnAdmit:
      case EventType::kLocalCommit:
      case EventType::kRollback:
      case EventType::kVote:
      case EventType::kDecide:
      case EventType::kCompensationBegin:
      case EventType::kCompensationEnd:
      case EventType::kMarkInsert:
      case EventType::kMarkRetire:
      case EventType::kTxnFinish:
        out.push_back(std::string(EventTypeName(event.type)) + "@" +
                      std::to_string(event.site));
        break;
      default:
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Recorder basics.

TEST(TraceRecorderTest, InactiveByDefaultAndScoped) {
  EXPECT_EQ(ActiveRecorder(), nullptr);
  TraceRecorder recorder;
  {
    ScopedTrace scope(&recorder, nullptr);
    EXPECT_EQ(ActiveRecorder(), &recorder);
    O2PC_TRACE(kTxnSubmit, 0, 42);
  }
  EXPECT_EQ(ActiveRecorder(), nullptr);
  O2PC_TRACE(kTxnSubmit, 0, 43);  // no active recorder: dropped
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.events()[0].type, EventType::kTxnSubmit);
  EXPECT_EQ(recorder.events()[0].txn, 42u);
}

TEST(TraceRecorderTest, EventTypeNamesAreStable) {
  EXPECT_STREQ(EventTypeName(EventType::kTxnSubmit), "txn_submit");
  EXPECT_STREQ(EventTypeName(EventType::kLocalCommit), "local_commit");
  EXPECT_STREQ(EventTypeName(EventType::kCompensationEnd),
               "compensation_end");
  EXPECT_STREQ(EventTypeName(EventType::kSiteRecover), "site_recover");
}

// ---------------------------------------------------------------------------
// The deterministic two-site abort journal.

TEST(TraceJournalTest, O2pcAbortEmitsExactProtocolSequence) {
  const std::vector<TraceEvent> events =
      RecordAbortRun(core::CommitProtocol::kOptimistic);
  ASSERT_FALSE(events.empty());
  // Timestamps never go backwards (single simulator clock).
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time) << "at event " << i;
  }
  // The O2PC abort story, exactly: both subtxns admitted; site 0 locally
  // commits at vote time while site 1 (forced) rolls back, marks, and votes
  // no; the coordinator aborts early; site 0 then runs exactly one
  // compensation and marks the forward transaction undone when it is done.
  const std::vector<std::string> expected = {
      "txn_submit@0",
      "subtxn_admit@0",
      "subtxn_admit@1",
      "local_commit@0",
      "vote@0",
      "rollback@1",
      "mark_insert@1",
      "vote@1",
      "decide@0",
      "compensation_begin@0",
      "compensation_end@0",
      "mark_insert@0",
      "txn_finish@0",
  };
  EXPECT_EQ(ProtocolPlane(events), expected);
  // And the checker agrees the journal is clean.
  const CheckReport report = CheckTrace(events);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.local_commits, 1u);
  EXPECT_EQ(report.compensations, 1u);
}

TEST(TraceJournalTest, TwoPcAbortPreparesAndNeverCompensates) {
  const std::vector<TraceEvent> events =
      RecordAbortRun(core::CommitProtocol::kTwoPhaseCommit);
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.type == EventType::kPrepare;
  }));
  for (const TraceEvent& event : events) {
    EXPECT_NE(event.type, EventType::kLocalCommit);
    EXPECT_NE(event.type, EventType::kCompensationBegin);
  }
  const CheckReport report = CheckTrace(events);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.prepares, 1u);
  EXPECT_EQ(report.compensations, 0u);
}

// ---------------------------------------------------------------------------
// Checker on full workloads.

TEST(TraceCheckerTest, CleanOnContendedO2pcWorkload) {
  TraceRecorder recorder;
  const harness::RunResult result =
      RunTracedWorkload(core::CommitProtocol::kOptimistic, recorder);
  EXPECT_GT(result.trace_events, 0u);
  EXPECT_EQ(result.trace_events, recorder.size());
  const CheckReport report = CheckTrace(recorder.events());
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.local_commits, 0u);
  EXPECT_GT(report.compensations, 0u);  // 25% vote-aborts guarantee some
}

TEST(TraceCheckerTest, CleanOnContended2pcWorkload) {
  TraceRecorder recorder;
  RunTracedWorkload(core::CommitProtocol::kTwoPhaseCommit, recorder);
  const CheckReport report = CheckTrace(recorder.events());
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.prepares, 0u);
  EXPECT_EQ(report.compensations, 0u);
}

// ---------------------------------------------------------------------------
// Checker on corrupted journals.

TEST(TraceCheckerTest, FlagsLockReleasedAfterLocalCommit) {
  std::vector<TraceEvent> events =
      RecordAbortRun(core::CommitProtocol::kOptimistic);
  // Find site 0's local commit and one lock release belonging to the same
  // local transaction, then move the release to after the commit — the
  // forbidden "O2PC still holds a lock past its local commit" shape.
  auto commit_it =
      std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return e.type == EventType::kLocalCommit && e.site == 0;
      });
  ASSERT_NE(commit_it, events.end());
  const auto local_id = static_cast<TxnId>(commit_it->a);
  // The *last* release before the commit (earlier keys may legitimately be
  // re-acquired and re-released; only the final release of each key is
  // load-bearing for the held-set at commit time).
  auto release_rit = std::find_if(
      std::make_reverse_iterator(commit_it), events.rend(),
      [&](const TraceEvent& e) {
        return e.type == EventType::kLockRelease && e.site == 0 &&
               e.txn == local_id;
      });
  ASSERT_NE(release_rit, events.rend());
  auto release_it = release_rit.base() - 1;
  std::rotate(release_it, release_it + 1, commit_it + 1);
  const CheckReport report = CheckTrace(events);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(std::any_of(
      report.violations.begin(), report.violations.end(),
      [](const TraceViolation& v) { return v.invariant == "I1"; }))
      << report.Summary();
}

TEST(TraceCheckerTest, FlagsMissingCompensationEnd) {
  std::vector<TraceEvent> events =
      RecordAbortRun(core::CommitProtocol::kOptimistic);
  const auto removed = std::remove_if(
      events.begin(), events.end(), [](const TraceEvent& e) {
        return e.type == EventType::kCompensationEnd;
      });
  ASSERT_NE(removed, events.end());
  events.erase(removed, events.end());
  const CheckReport report = CheckTrace(events);
  ASSERT_FALSE(report.ok());
  // Losing the end both leaves the attempt dangling (I6) and means the
  // aborted-but-locally-committed subtxn never completed compensation (I3);
  // the R2 mark that used to follow it now fires early (I4).
  EXPECT_TRUE(std::any_of(
      report.violations.begin(), report.violations.end(),
      [](const TraceViolation& v) {
        return v.invariant == "I3" || v.invariant == "I6";
      }))
      << report.Summary();
}

TEST(TraceCheckerTest, FlagsRetireWithoutWitness) {
  std::vector<TraceEvent> events;
  TraceEvent retire;
  retire.type = EventType::kMarkRetire;
  retire.site = 2;
  retire.txn = 9;
  events.push_back(retire);
  const CheckReport report = CheckTrace(events);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].invariant, "I5");
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(TraceExportTest, JsonLineCarriesAllFields) {
  TraceEvent event;
  event.time = 1500;
  event.type = EventType::kLocalCommit;
  event.site = 2;
  event.txn = 7;
  event.a = 3;
  const std::string line = ToJsonLine(event);
  EXPECT_NE(line.find("\"t\":1500"), std::string::npos) << line;
  EXPECT_NE(line.find("\"type\":\"local_commit\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"site\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"txn\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"a\":3"), std::string::npos) << line;
}

TEST(TraceExportTest, JsonlHasOneLinePerEvent) {
  const std::vector<TraceEvent> events =
      RecordAbortRun(core::CommitProtocol::kOptimistic);
  std::ostringstream out;
  ExportJsonl(events, out);
  const std::string text = out.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            events.size());
}

TEST(TraceExportTest, ChromeTraceIsWellFormedEnvelope) {
  const std::vector<TraceEvent> events =
      RecordAbortRun(core::CommitProtocol::kOptimistic);
  std::ostringstream out;
  ExportChromeTrace(events, out);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u) << text.substr(0, 40);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 3), "]}\n");
}

}  // namespace
}  // namespace o2pc::trace
