// Termination protocol and blocking resolution: participant-driven
// decision recovery (DECISION-REQ against the home site's recovery agent),
// cooperative termination against the peers, the pre-vote timeout's
// unilateral withdrawal, and the coordinator's log-and-retire on ack
// exhaustion.

#include <gtest/gtest.h>

#include "core/system.h"
#include "net/network.h"
#include "trace/trace.h"
#include "workload/scenarios.h"

namespace o2pc::core {
namespace {

SystemOptions BaseOptions(CommitProtocol protocol) {
  SystemOptions options;
  options.num_sites = 3;
  options.keys_per_site = 16;
  options.seed = 13;
  options.protocol.protocol = protocol;
  // Participant-side termination on (off by default).
  options.protocol.decision_timeout = Millis(20);
  options.protocol.decision_req_attempts = 2;
  options.protocol.termination_budget = 12;
  return options;
}

bool HasInDoubt(const DistributedSystem& system) {
  for (int i = 0; i < system.options().num_sites; ++i) {
    const SiteId site = static_cast<SiteId>(i);
    if (!system.db(site).PendingExposedSubtxns().empty()) return true;
    if (!system.db(site).PendingPreparedSubtxns().empty()) return true;
  }
  return false;
}

TEST(TerminationTest, DecisionReqResolvesPermanentCoordinatorCrash) {
  // The coordinator dies forever right after force-logging COMMIT. No
  // DECISION ever leaves, but the home site's recovery agent still answers
  // DECISION-REQ from the log — every participant terminates and the
  // transfer becomes durable at both sites.
  for (CommitProtocol protocol :
       {CommitProtocol::kTwoPhaseCommit, CommitProtocol::kOptimistic}) {
    DistributedSystem system(BaseOptions(protocol));
    const TxnId id =
        system.SubmitGlobal(workload::MakeTransfer(1, 1, 2, 2, 10));
    system.InjectCoordinatorCrash(id, /*outage=*/-1);
    system.Run();

    EXPECT_EQ(system.stats().Count("coordinator_crashes_permanent"), 1u);
    EXPECT_EQ(system.stats().Count("decisions_commit"), 1u);
    EXPECT_GT(system.stats().Count("decision_reqs_sent"), 0u);
    EXPECT_GT(system.stats().Count("decision_reqs_answered"), 0u);
    // Both participants finalized the logged commit.
    EXPECT_EQ(system.db(1).table().Get(1)->value, 990);
    EXPECT_EQ(system.db(2).table().Get(2)->value, 1010);
    EXPECT_FALSE(HasInDoubt(system)) << CommitProtocolName(protocol);
    // The crashed incarnation itself stays unfinished (nobody is left to
    // run its completion) — exactly the wedge the liveness oracle
    // tolerates.
    EXPECT_EQ(system.globals_finished() + 1, system.globals_submitted());
  }
}

TEST(TerminationTest, CooperativeTerminationResolvesViaPeer) {
  // The coordinator dies forever after logging COMMIT and site 2's
  // DECISION-REQs are all lost on top of that. Site 1 recovers the
  // decision from the home site's log; site 2 exhausts its DECISION-REQ
  // attempts, escalates to cooperative termination, and learns the
  // outcome from its peer instead of blocking forever.
  SystemOptions options = BaseOptions(CommitProtocol::kTwoPhaseCommit);
  DistributedSystem system(options);
  trace::TraceRecorder recorder;
  trace::ScopedTrace scope(&recorder, &system.simulator());
  system.network().SetFaultHook([](const net::Message& message) {
    net::FaultDecision decision;
    decision.drop = message.type == net::MessageType::kDecisionReq &&
                    message.from == 2;
    return decision;
  });

  const TxnId id =
      system.SubmitGlobal(workload::MakeTransfer(1, 1, 2, 2, 10));
  system.InjectCoordinatorCrash(id, /*outage=*/-1);
  system.Run();

  EXPECT_GT(system.stats().Count("decision_reqs_answered"), 0u);
  EXPECT_GT(system.stats().Count("term_reqs_sent"), 0u);
  EXPECT_EQ(system.stats().Count("ctp_resolutions"), 1u);
  // Site 2 finalized the commit it learned from its peer.
  EXPECT_EQ(system.db(1).table().Get(1)->value, 990);
  EXPECT_EQ(system.db(2).table().Get(2)->value, 1010);
  EXPECT_FALSE(HasInDoubt(system));
  // Only the permanently-orphaned coordinator incarnation stays open.
  EXPECT_EQ(system.globals_finished() + 1, system.globals_submitted());
  // The resolution is journaled (checker I2 counts it as the decision).
  // Journal assertions need live tracing.
#ifndef O2PC_TRACE_DISABLED
  bool saw_resolve = false;
  for (const trace::TraceEvent& event : recorder.events()) {
    if (event.type == trace::EventType::kTermResolve && event.txn == id) {
      EXPECT_EQ(event.a, 1);  // commit
      EXPECT_EQ(event.site, 2u);
      saw_resolve = true;
    }
  }
  EXPECT_TRUE(saw_resolve);
#endif
}

TEST(TerminationTest, BroadcastRetiresAfterAckExhaustion) {
  // Site 2 acknowledges nothing: the coordinator's DECISION keeps getting
  // through (idempotent) but every DECISION-ACK is lost. After the resend
  // budget the coordinator logs a warning and retires the broadcast — the
  // decision is durable in its log and participants have long terminated,
  // so spinning forever would buy nothing.
  SystemOptions options = BaseOptions(CommitProtocol::kTwoPhaseCommit);
  options.protocol.resend_timeout = Millis(40);
  options.protocol.max_resends = 3;
  DistributedSystem system(options);
  system.network().SetFaultHook([](const net::Message& message) {
    net::FaultDecision decision;
    decision.drop = message.type == net::MessageType::kDecisionAck &&
                    message.from == 2;
    return decision;
  });

  GlobalResult result;
  system.SubmitGlobal(workload::MakeTransfer(1, 1, 2, 2, 10),
                      [&](const GlobalResult& r) { result = r; });
  system.Run();

  EXPECT_TRUE(result.committed);
  EXPECT_EQ(system.stats().Count("broadcasts_retired_unacked"), 1u);
  EXPECT_EQ(system.db(1).table().Get(1)->value, 990);
  EXPECT_EQ(system.db(2).table().Get(2)->value, 1010);
  EXPECT_FALSE(HasInDoubt(system));
  EXPECT_EQ(system.globals_finished(), system.globals_submitted());
}

TEST(TerminationTest, CtpInfersAbortFromUnvotedPeer) {
  // Site 2 never receives a VOTE-REQ (all dropped). Site 1 votes commit,
  // gets no DECISION, and escalates straight to cooperative termination
  // (decision_req_attempts = 0). Its TERM-REQ finds site 2 still unvoted;
  // site 2 renounces its vote right (a unilateral abort) and answers with
  // a binding abort — site 1 unblocks without ever hearing from the
  // coordinator.
  SystemOptions options = BaseOptions(CommitProtocol::kTwoPhaseCommit);
  options.protocol.decision_req_attempts = 0;
  options.protocol.resend_timeout = Millis(200);
  options.protocol.max_resends = 1;
  options.max_global_restarts = 0;
  DistributedSystem system(options);
  system.network().SetFaultHook([](const net::Message& message) {
    net::FaultDecision decision;
    decision.drop = message.type == net::MessageType::kVoteRequest &&
                    message.to == 2;
    return decision;
  });

  GlobalResult result;
  const Value before = system.TotalValue();
  system.SubmitGlobal(workload::MakeTransfer(1, 1, 2, 2, 10),
                      [&](const GlobalResult& r) { result = r; });
  system.Run();

  EXPECT_FALSE(result.committed);
  EXPECT_GT(system.stats().Count("term_reqs_sent"), 0u);
  EXPECT_EQ(system.stats().Count("ctp_resolutions"), 1u);
  EXPECT_GT(system.stats().Count("unilateral_aborts"), 0u);
  EXPECT_EQ(system.TotalValue(), before);
  EXPECT_FALSE(HasInDoubt(system));
  EXPECT_EQ(system.globals_finished(), system.globals_submitted());
}

TEST(TerminationTest, PrevoteTimeoutWithdrawsExecutedSubtxn) {
  // A VOTE-REQ that never arrives: after prevote_timeout the executed,
  // still-unvoted subtransaction is withdrawn via unilateral abort —
  // locks released, a failure ack sent — instead of waiting on a
  // coordinator that may be gone.
  SystemOptions options = BaseOptions(CommitProtocol::kTwoPhaseCommit);
  options.protocol.prevote_timeout = Millis(30);
  options.protocol.resend_timeout = Millis(100);
  options.protocol.max_resends = 2;
  options.max_global_restarts = 0;
  DistributedSystem system(options);
  trace::TraceRecorder recorder;
  trace::ScopedTrace scope(&recorder, &system.simulator());
  system.network().SetFaultHook([](const net::Message& message) {
    net::FaultDecision decision;
    decision.drop = message.type == net::MessageType::kVoteRequest &&
                    message.to == 2;
    return decision;
  });

  GlobalResult result;
  const Value before = system.TotalValue();
  system.SubmitGlobal(workload::MakeTransfer(1, 1, 2, 2, 10),
                      [&](const GlobalResult& r) { result = r; });
  system.Run();

  EXPECT_FALSE(result.committed);
  EXPECT_GT(system.stats().Count("prevote_timeouts"), 0u);
  EXPECT_GT(system.stats().Count("unilateral_aborts"), 0u);
  EXPECT_EQ(system.TotalValue(), before);
  EXPECT_FALSE(HasInDoubt(system));
  EXPECT_EQ(system.globals_finished(), system.globals_submitted());
  // The timeout is journaled as round 0 (pre-vote). Journal assertions
  // need live tracing.
#ifndef O2PC_TRACE_DISABLED
  bool saw_timeout = false;
  for (const trace::TraceEvent& event : recorder.events()) {
    if (event.type == trace::EventType::kDecisionTimeout && event.a == 0) {
      EXPECT_EQ(event.site, 2u);
      saw_timeout = true;
    }
  }
  EXPECT_TRUE(saw_timeout);
#endif
}

TEST(TerminationTest, HealableOutageNeedsNoTermination) {
  // With a finite outage the ordinary recovery path still wins: the
  // coordinator comes back and resends, and if the participant asked for
  // the decision meanwhile that is benign (idempotent DECISION handling).
  SystemOptions options = BaseOptions(CommitProtocol::kTwoPhaseCommit);
  options.protocol.coordinator_recovery_delay = Millis(60);
  DistributedSystem system(options);
  GlobalResult result;
  const TxnId id =
      system.SubmitGlobal(workload::MakeTransfer(1, 1, 2, 2, 10),
                          [&](const GlobalResult& r) { result = r; });
  system.InjectCoordinatorCrash(id, /*outage=*/Millis(60));
  system.Run();

  EXPECT_TRUE(result.committed);
  EXPECT_EQ(system.stats().Count("coordinator_crashes"), 1u);
  EXPECT_EQ(system.stats().Count("coordinator_crashes_permanent"), 0u);
  EXPECT_EQ(system.db(1).table().Get(1)->value, 990);
  EXPECT_EQ(system.db(2).table().Get(2)->value, 1010);
  EXPECT_FALSE(HasInDoubt(system));
  EXPECT_EQ(system.globals_finished(), system.globals_submitted());
}

}  // namespace
}  // namespace o2pc::core
