// Tests for the telemetry layer: the commit-phase profiler, the coverage
// map, the time-series sampler, the sweep JSON schema, and the HTML
// report — plus the determinism contract (telemetry byte-identical across
// job counts, journals unperturbed by sampling).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/fault_plan.h"
#include "campaign/runner.h"
#include "metrics/histogram.h"
#include "telemetry/coverage.h"
#include "telemetry/json.h"
#include "telemetry/phase_profiler.h"
#include "telemetry/report.h"
#include "trace/trace.h"

namespace o2pc::telemetry {
namespace {

trace::TraceEvent Event(SimTime time, trace::EventType type, SiteId site,
                        TxnId txn, std::int64_t a = 0, std::int64_t b = 0) {
  trace::TraceEvent event;
  event.time = time;
  event.type = type;
  event.site = site;
  event.txn = txn;
  event.a = a;
  event.b = b;
  return event;
}

// --- Phase profiler -------------------------------------------------------

TEST(PhaseProfilerTest, AttributesSyntheticLifecycle) {
  using trace::EventType;
  const std::int64_t vote_req = static_cast<std::int64_t>(
      net::MessageType::kVoteRequest);
  std::vector<trace::TraceEvent> events = {
      Event(100, EventType::kTxnSubmit, 0, 7),
      Event(150, EventType::kMsgSend, 0, 7, vote_req, 1),
      Event(160, EventType::kPrepare, 1, 7),
      Event(180, EventType::kVote, 1, 7, 1),
      Event(200, EventType::kDecide, 0, 7, 1),
      // Post-vote termination round (round 0 is the pre-vote timeout and
      // must not open a termination window).
      Event(205, EventType::kDecisionTimeout, 1, 7, 1),
      Event(210, EventType::kFinalCommit, 1, 7),
      Event(215, EventType::kTermResolve, 1, 7, 1),
      Event(240, EventType::kTxnFinish, 0, 7, 1),
  };
  const PhaseProfile profile = ProfilePhases(events);
  EXPECT_EQ(profile.txns_profiled, 1u);
  EXPECT_EQ(profile.txns_committed, 1u);
  ASSERT_EQ(profile.of(Phase::kExecute).count(), 1u);
  EXPECT_DOUBLE_EQ(profile.of(Phase::kExecute).Mean(), 50.0);   // 150-100
  EXPECT_DOUBLE_EQ(profile.of(Phase::kVoting).Mean(), 30.0);    // 180-150
  EXPECT_DOUBLE_EQ(profile.of(Phase::kDecision).Mean(), 20.0);  // 200-180
  EXPECT_DOUBLE_EQ(profile.of(Phase::kAck).Mean(), 40.0);       // 240-200
  // Prepared window: kPrepare(160) -> kFinalCommit(210) at site 1.
  ASSERT_EQ(profile.of(Phase::kBlockedPrepared).count(), 1u);
  EXPECT_DOUBLE_EQ(profile.of(Phase::kBlockedPrepared).Mean(), 50.0);
  // Termination window: timeout round 1 (205) -> kFinalCommit (210).
  ASSERT_EQ(profile.of(Phase::kTermination).count(), 1u);
  EXPECT_DOUBLE_EQ(profile.of(Phase::kTermination).Mean(), 5.0);
}

TEST(PhaseProfilerTest, AttributesRecoveryWindowPerSite) {
  using trace::EventType;
  std::vector<trace::TraceEvent> events = {
      // One clean crash-restart at site 1: the window runs crash -> end.
      Event(100, EventType::kSiteCrash, 1, kInvalidTxn),
      Event(160, EventType::kRecoveryBegin, 1, kInvalidTxn, 2),
      Event(200, EventType::kRecoveryEnd, 1, kInvalidTxn, 2, 0),
      // Double fault at site 2: the re-crash lands inside recovery; the
      // sample spans the earliest crash to the final kRecoveryEnd.
      Event(300, EventType::kSiteCrash, 2, kInvalidTxn),
      Event(340, EventType::kRecoveryBegin, 2, kInvalidTxn, 1),
      Event(350, EventType::kSiteCrash, 2, kInvalidTxn),
      Event(420, EventType::kRecoveryBegin, 2, kInvalidTxn, 1),
      Event(450, EventType::kRecoveryEnd, 2, kInvalidTxn, 1, 0),
      // Site 3 crashes and never recovers: no sample (skipped, not
      // guessed at).
      Event(500, EventType::kSiteCrash, 3, kInvalidTxn),
  };
  const PhaseProfile profile = ProfilePhases(events);
  ASSERT_EQ(profile.of(Phase::kRecovery).count(), 2u);
  // (200-100) and (450-300).
  EXPECT_DOUBLE_EQ(profile.of(Phase::kRecovery).Mean(), 125.0);
}

TEST(PhaseProfilerTest, SkipsUnfinishedTxnsAndPreVoteTimeouts) {
  using trace::EventType;
  std::vector<trace::TraceEvent> events = {
      Event(100, EventType::kTxnSubmit, 0, 7),
      // Pre-vote autonomy timeout (round 0): no termination window.
      Event(150, EventType::kDecisionTimeout, 1, 7, 0),
      // Never finishes: contributes nothing to the profile.
  };
  const PhaseProfile profile = ProfilePhases(events);
  EXPECT_EQ(profile.txns_profiled, 0u);
  EXPECT_EQ(profile.of(Phase::kTermination).count(), 0u);
}

TEST(PhaseProfilerTest, MergeFoldsHistogramsAndCounters) {
  using trace::EventType;
  std::vector<trace::TraceEvent> events = {
      Event(0, EventType::kTxnSubmit, 0, 1),
      Event(10, EventType::kTxnFinish, 0, 1, 1),
  };
  PhaseProfile a = ProfilePhases(events);
  const PhaseProfile b = ProfilePhases(events);
  a.Merge(b);
  EXPECT_EQ(a.txns_profiled, 2u);
  EXPECT_EQ(a.txns_committed, 2u);
  EXPECT_EQ(a.of(Phase::kExecute).count(), 2u);
}

// --- Campaign capture ----------------------------------------------------

campaign::CampaignRunConfig SmallRunConfig() {
  campaign::CampaignRunConfig config;
  config.seed = 11;
  config.num_sites = 4;
  config.num_globals = 12;
  config.num_locals = 6;
  config.collect_telemetry = true;
  return config;
}

// Needs a live journal: the phase profiler and message-coverage pass read
// the run's trace events, which compile away under O2PC_TRACE_DISABLED.
#ifndef O2PC_TRACE_DISABLED
TEST(TelemetryCaptureTest, RealRunProfilesAndCovers) {
  const campaign::CampaignRunResult result =
      campaign::RunOne(SmallRunConfig());
  const RunTelemetry& telemetry = result.telemetry;
  EXPECT_GT(telemetry.profile.txns_profiled, 0u);
  EXPECT_GT(telemetry.profile.of(Phase::kExecute).count(), 0u);
  // The step observer saw protocol steps; the journal pass saw messages.
  std::uint64_t steps = 0, messages = 0;
  for (std::uint64_t h : telemetry.coverage.step_hits) steps += h;
  for (std::uint64_t h : telemetry.coverage.message_hits) messages += h;
  EXPECT_GT(steps, 0u);
  EXPECT_GT(messages, 0u);
  // Fault-free run, oracles pass: exactly one kPass verdict.
  EXPECT_EQ(telemetry.coverage.verdict_hits[static_cast<int>(
                OracleVerdict::kPass)],
            1u);
}
#endif  // O2PC_TRACE_DISABLED

TEST(TelemetryCaptureTest, CollectionDoesNotPerturbTheJournal) {
  campaign::CampaignRunConfig plain = SmallRunConfig();
  plain.collect_telemetry = false;
  campaign::CampaignRunConfig sampled = SmallRunConfig();
  sampled.collect_time_series = true;
  sampled.time_series_interval = Millis(1);
  const campaign::CampaignRunResult a = campaign::RunOne(plain);
  const campaign::CampaignRunResult b = campaign::RunOne(sampled);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.journal, b.journal);
  ASSERT_TRUE(b.telemetry.has_series);
  ASSERT_FALSE(b.telemetry.series.samples.empty());
  // Samples land on the fixed interval grid, strictly increasing.
  SimTime last = 0;
  for (const TimeSample& sample : b.telemetry.series.samples) {
    EXPECT_EQ(sample.time % Millis(1), 0);
    EXPECT_GT(sample.time, last);
    last = sample.time;
  }
}

// --- Coverage map --------------------------------------------------------

TEST(CoverageMapTest, MergeIsOrderIndependent) {
  CoverageMap a;
  a.RecordStep(core::ProtocolStep::kLocalCommit);
  a.RecordFault(0, 2);
  a.RecordVerdict(OracleVerdict::kPass);
  CoverageMap b;
  b.RecordMessage(net::MessageType::kVote);
  b.RecordFault(3);

  CoverageMap ab = a;
  ab.Merge(b);
  CoverageMap ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.Fingerprint(), ba.Fingerprint());
  EXPECT_NE(ab.Fingerprint(), a.Fingerprint());
}

TEST(CoverageMapTest, UnhitCellsGateStepsFaultsAndPassColumn) {
  CoverageMap map;
  const std::vector<std::string> unhit = map.UnhitCells();
  // Gated: every step, every production, and each production's pass cell
  // in the (production x verdict) matrix.
  EXPECT_EQ(unhit.size(),
            static_cast<std::size_t>(core::kNumProtocolSteps +
                                     2 * kNumFaultProductions));
  for (const std::string& cell : unhit) {
    EXPECT_TRUE(cell.rfind("step:", 0) == 0 || cell.rfind("fault:", 0) == 0 ||
                cell.rfind("fault_verdict:", 0) == 0)
        << cell;
  }
  for (int i = 0; i < core::kNumProtocolSteps; ++i) {
    map.RecordStep(static_cast<core::ProtocolStep>(i));
  }
  for (int i = 0; i < kNumFaultProductions; ++i) map.RecordFault(i);
  // Faults alone do not satisfy the matrix gate: each production must also
  // appear in a passing run.
  EXPECT_EQ(map.UnhitCells().size(),
            static_cast<std::size_t>(kNumFaultProductions));
  for (int i = 0; i < kNumFaultProductions; ++i) {
    map.RecordProductionVerdict(i, OracleVerdict::kPass);
  }
  EXPECT_TRUE(map.UnhitCells().empty());
  // Violation columns are reported in the matrix but never gated.
  map.RecordProductionVerdict(2, OracleVerdict::kTraceViolation);
  EXPECT_TRUE(map.UnhitCells().empty());
}

// --- JSON schema ---------------------------------------------------------

campaign::CampaignOptions SmallSweep(int jobs) {
  campaign::CampaignOptions options;
  options.runs = 8;
  options.base_seed = 5;
  options.jobs = jobs;
  options.num_globals = 12;
  options.num_locals = 6;
  options.shrink_failures = false;
  options.collect_telemetry = true;
  return options;
}

TEST(SweepTelemetryTest, JsonRoundTripIsByteIdentical) {
  const campaign::CampaignReport report =
      campaign::RunCampaign(SmallSweep(1));
  ASSERT_TRUE(report.telemetry_collected);
  const std::string json = report.telemetry.ToJson();

  SweepTelemetry parsed;
  std::string error;
  ASSERT_TRUE(SweepTelemetry::FromJson(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.runs, report.telemetry.runs);
  EXPECT_EQ(parsed.coverage, report.telemetry.coverage);
  EXPECT_EQ(parsed.ToJson(), json);
}

TEST(SweepTelemetryTest, ByteIdenticalAcrossJobCounts) {
  const campaign::CampaignReport serial = campaign::RunCampaign(SmallSweep(1));
  const campaign::CampaignReport fanned = campaign::RunCampaign(SmallSweep(4));
  ASSERT_TRUE(serial.telemetry_collected);
  ASSERT_TRUE(fanned.telemetry_collected);
  EXPECT_EQ(serial.CombinedFingerprint(), fanned.CombinedFingerprint());
  EXPECT_EQ(serial.telemetry.coverage.Fingerprint(),
            fanned.telemetry.coverage.Fingerprint());
  EXPECT_EQ(serial.telemetry.ToJson(), fanned.telemetry.ToJson());
}

TEST(SweepTelemetryTest, CrossFileMergeSumsAndFlagsEstimates) {
  campaign::CampaignOptions first = SmallSweep(1);
  campaign::CampaignOptions second = SmallSweep(1);
  second.base_seed = 99;
  const campaign::CampaignReport a = campaign::RunCampaign(first);
  const campaign::CampaignReport b = campaign::RunCampaign(second);

  // Round-trip through the schema, as o2pc_report does.
  SweepTelemetry merged, other;
  std::string error;
  ASSERT_TRUE(SweepTelemetry::FromJson(a.telemetry.ToJson(), &merged, &error));
  ASSERT_TRUE(SweepTelemetry::FromJson(b.telemetry.ToJson(), &other, &error));
  ASSERT_TRUE(merged.Merge(other, &error)) << error;
  EXPECT_EQ(merged.runs, a.telemetry.runs + b.telemetry.runs);
  EXPECT_TRUE(merged.approximate_percentiles);
  // Counters stay exact under the merge.
  std::uint64_t sum = 0;
  for (std::uint64_t h : merged.coverage.message_hits) sum += h;
  std::uint64_t expected = 0;
  for (std::uint64_t h : a.telemetry.coverage.message_hits) expected += h;
  for (std::uint64_t h : b.telemetry.coverage.message_hits) expected += h;
  EXPECT_EQ(sum, expected);
  // And the merged summary serializes under the same schema.
  SweepTelemetry reparsed;
  ASSERT_TRUE(
      SweepTelemetry::FromJson(merged.ToJson(), &reparsed, &error))
      << error;
  EXPECT_EQ(reparsed.ToJson(), merged.ToJson());
}

TEST(SweepTelemetryTest, FromJsonRejectsGarbage) {
  SweepTelemetry out;
  std::string error;
  EXPECT_FALSE(SweepTelemetry::FromJson("not json", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(SweepTelemetry::FromJson("{\"schema\": \"bogus\"}", &out,
                                        &error));
}

// --- JSON parser ---------------------------------------------------------

TEST(JsonParserTest, ParsesNestedValues) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"a": [1, 2.5, -3], "b": {"c": "text"}, "d": true, "e": null})",
      &value, &error))
      << error;
  const JsonValue& a = value.Get("a");
  ASSERT_EQ(a.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(a.array.size(), 3u);
  EXPECT_DOUBLE_EQ(a.array[1].number, 2.5);
  EXPECT_EQ(value.Get("b").Get("c").string, "text");
  EXPECT_TRUE(value.Get("d").boolean);
  EXPECT_EQ(value.Get("e").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(value.Get("missing").kind, JsonValue::Kind::kNull);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\": }", &value, &error));
  EXPECT_FALSE(ParseJson("[1, 2", &value, &error));
  EXPECT_FALSE(ParseJson("{} trailing", &value, &error));
  EXPECT_FALSE(error.empty());
}

// --- HTML report ---------------------------------------------------------

TEST(HtmlReportTest, RendersPhasesCoverageAndSparklines) {
  campaign::CampaignOptions options = SmallSweep(1);
  const campaign::CampaignReport report = campaign::RunCampaign(options);
  ASSERT_TRUE(report.telemetry_collected);
  const std::string html =
      RenderHtml(report.telemetry, "telemetry test report");
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("telemetry test report"), std::string::npos);
  // Phase breakdown, coverage matrix, and time-series sparklines all
  // present.
  for (int i = 0; i < kNumPhases; ++i) {
    EXPECT_NE(html.find(PhaseName(static_cast<Phase>(i))), std::string::npos)
        << PhaseName(static_cast<Phase>(i));
  }
  EXPECT_NE(html.find("coverage"), std::string::npos);
  EXPECT_NE(html.find("<polyline"), std::string::npos);
  // Self-contained: no external fetches.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  // The sweep had no fault injection on the "none" template runs only;
  // with all default templates most productions fire — but whatever is
  // unhit must be called out with the ✗ marker, never silently.
  if (!report.telemetry.coverage.UnhitCells().empty()) {
    EXPECT_NE(html.find("unhit"), std::string::npos);
  }
}

}  // namespace
}  // namespace o2pc::telemetry
