// o2pc_sim — command-line experiment runner.
//
// Runs one simulated workload under a chosen protocol/governance
// configuration and prints the aggregate metrics (or CSV for scripting).
//
//   o2pc_sim [--protocol=2pc|o2pc] [--governance=none|p1|p2|p2lit|simple]
//            [--directory=piggyback|oracle]
//            [--sites=N] [--keys=N] [--txns=N] [--locals=N]
//            [--abort-prob=P] [--zipf=T] [--latency-ms=L]
//            [--interarrival-us=U] [--crash-prob=P] [--seed=S]
//            [--analyze] [--csv]
//            [--trace=FILE] [--trace-jsonl=FILE] [--json=FILE]
//            [--telemetry-json=FILE] [--report=FILE.html]
//
// Examples:
//   o2pc_sim --protocol=o2pc --governance=p1 --abort-prob=0.1 --analyze
//   o2pc_sim --protocol=2pc --sites=8 --txns=500 --csv
//   o2pc_sim --protocol=o2pc --trace=run.json   # open in chrome://tracing
//
// --trace / --trace-jsonl also run the trace-driven invariant checker
// (trace/checker.h) over the recorded journal; violations are printed and
// fail the run with exit code 1.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "metrics/table.h"
#include "trace/checker.h"
#include "trace/trace.h"

using namespace o2pc;

namespace {

struct CliArgs {
  harness::ExperimentConfig config;
  bool csv = false;
  bool ok = true;
  std::string json_path;
};

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string ValueOf(const std::string& arg) {
  const std::size_t eq = arg.find('=');
  return eq == std::string::npos ? "" : arg.substr(eq + 1);
}

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  harness::ExperimentConfig& config = args.config;
  config.label = "cli";
  config.analyze = false;
  // Defaults that keep the offered load feasible; override via flags.
  config.workload.mean_global_interarrival = Millis(8);
  config.workload.mean_local_interarrival = Millis(4);
  config.workload.min_sites_per_txn = 2;
  config.workload.max_sites_per_txn = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string value = ValueOf(arg);
    if (StartsWith(arg, "--protocol=")) {
      if (value == "2pc") {
        config.system.protocol.protocol = core::CommitProtocol::kTwoPhaseCommit;
      } else if (value == "o2pc") {
        config.system.protocol.protocol = core::CommitProtocol::kOptimistic;
      } else {
        std::fprintf(stderr, "unknown protocol '%s'\n", value.c_str());
        args.ok = false;
      }
    } else if (StartsWith(arg, "--governance=")) {
      if (value == "none") {
        config.system.protocol.governance = core::GovernancePolicy::kNone;
      } else if (value == "p1") {
        config.system.protocol.governance = core::GovernancePolicy::kP1;
      } else if (value == "p2") {
        config.system.protocol.governance = core::GovernancePolicy::kP2;
      } else if (value == "p2lit") {
        config.system.protocol.governance = core::GovernancePolicy::kP2Literal;
      } else if (value == "simple") {
        config.system.protocol.governance = core::GovernancePolicy::kSimple;
      } else {
        std::fprintf(stderr, "unknown governance '%s'\n", value.c_str());
        args.ok = false;
      }
    } else if (StartsWith(arg, "--directory=")) {
      config.system.protocol.directory = value == "oracle"
                                             ? core::DirectoryMode::kOracle
                                             : core::DirectoryMode::kPiggyback;
    } else if (StartsWith(arg, "--sites=")) {
      config.system.num_sites = std::atoi(value.c_str());
    } else if (StartsWith(arg, "--keys=")) {
      config.system.keys_per_site =
          static_cast<DataKey>(std::atoll(value.c_str()));
    } else if (StartsWith(arg, "--txns=")) {
      config.workload.num_global_txns = std::atoi(value.c_str());
    } else if (StartsWith(arg, "--locals=")) {
      config.workload.num_local_txns = std::atoi(value.c_str());
    } else if (StartsWith(arg, "--abort-prob=")) {
      config.workload.vote_abort_probability = std::atof(value.c_str());
    } else if (StartsWith(arg, "--zipf=")) {
      config.workload.zipf_theta = std::atof(value.c_str());
    } else if (StartsWith(arg, "--latency-ms=")) {
      config.system.network.base_latency = Millis(std::atoll(value.c_str()));
    } else if (StartsWith(arg, "--interarrival-us=")) {
      config.workload.mean_global_interarrival = std::atoll(value.c_str());
      config.workload.mean_local_interarrival =
          config.workload.mean_global_interarrival / 2;
    } else if (StartsWith(arg, "--crash-prob=")) {
      config.system.protocol.coordinator_crash_probability =
          std::atof(value.c_str());
    } else if (StartsWith(arg, "--seed=")) {
      config.system.seed = std::strtoull(value.c_str(), nullptr, 10);
      config.workload.seed = config.system.seed * 31 + 7;
    } else if (StartsWith(arg, "--trace=")) {
      config.trace_chrome_path = value;
    } else if (StartsWith(arg, "--trace-jsonl=")) {
      config.trace_jsonl_path = value;
    } else if (StartsWith(arg, "--json=")) {
      args.json_path = value;
    } else if (StartsWith(arg, "--telemetry-json=")) {
      config.telemetry_json_path = value;
    } else if (StartsWith(arg, "--report=")) {
      config.report_html_path = value;
    } else if (arg == "--analyze") {
      config.analyze = true;
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      args.ok = false;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      args.ok = false;
    }
  }
  return args;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: o2pc_sim [--protocol=2pc|o2pc] "
      "[--governance=none|p1|p2|p2lit|simple]\n"
      "                [--directory=piggyback|oracle] [--sites=N] "
      "[--keys=N]\n"
      "                [--txns=N] [--locals=N] [--abort-prob=P] [--zipf=T]\n"
      "                [--latency-ms=L] [--interarrival-us=U] "
      "[--crash-prob=P]\n"
      "                [--seed=S] [--analyze] [--csv]\n"
      "                [--trace=FILE.json] [--trace-jsonl=FILE.jsonl] "
      "[--json=FILE]\n"
      "                [--telemetry-json=FILE] [--report=FILE.html]\n"
      "\n"
      "  --trace        record protocol events, export Chrome trace format\n"
      "                 (open in chrome://tracing), and run the invariant\n"
      "                 checker over the journal\n"
      "  --trace-jsonl  same journal as one JSON object per line\n"
      "  --json         write the aggregate metrics as JSON\n"
      "  --telemetry-json  write run telemetry (phase latencies, coverage,\n"
      "                 time-series) as JSON\n"
      "  --report       write the self-contained HTML telemetry report\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args = Parse(argc, argv);
  if (!args.ok) {
    PrintUsage();
    return 2;
  }
  const bool tracing = !args.config.trace_chrome_path.empty() ||
                       !args.config.trace_jsonl_path.empty();
  trace::TraceRecorder recorder;
  if (tracing) args.config.recorder = &recorder;
  const harness::RunResult result = harness::RunExperiment(args.config);
  trace::CheckReport check;
  if (tracing) check = trace::CheckTrace(recorder.events());

  metrics::TablePrinter table({"metric", "value"});
  table.AddRow({"protocol",
                core::CommitProtocolName(args.config.system.protocol.protocol)});
  table.AddRow({"governance", core::GovernancePolicyName(
                                  args.config.system.protocol.governance)});
  table.AddRow({"makespan", FormatDuration(result.makespan)});
  table.AddRow({"throughput (txn/s)", FormatDouble(result.throughput_tps, 2)});
  table.AddRow({"committed", std::to_string(result.committed)});
  table.AddRow({"aborted", std::to_string(result.aborted)});
  table.AddRow({"mean latency",
                FormatDuration(static_cast<Duration>(result.mean_latency_us))});
  table.AddRow({"p99 latency",
                FormatDuration(static_cast<Duration>(result.p99_latency_us))});
  table.AddRow(
      {"mean X-lock hold",
       FormatDuration(static_cast<Duration>(result.mean_xlock_hold_us))});
  table.AddRow(
      {"mean lock wait",
       FormatDuration(static_cast<Duration>(result.mean_lock_wait_us))});
  table.AddRow({"deadlocks", std::to_string(result.deadlocks)});
  table.AddRow({"restarts", std::to_string(result.restarts)});
  table.AddRow({"compensations", std::to_string(result.compensations)});
  table.AddRow({"R1 rejections", std::to_string(result.r1_rejections)});
  table.AddRow({"UDUM unmarks", std::to_string(result.udum_unmarks)});
  table.AddRow({"messages", std::to_string(result.messages_total)});
  if (args.config.analyze) {
    table.AddRow({"history correct", result.report.correct ? "yes" : "NO"});
    table.AddRow({"regular cycles",
                  result.report.has_regular_cycle ? "YES" : "no"});
    table.AddRow({"atomic compensation",
                  result.report.atomic_compensation ? "yes" : "NO"});
  }
  if (tracing) {
    table.AddRow({"trace events", std::to_string(result.trace_events)});
    table.AddRow({"trace invariants",
                  check.ok() ? "ok" : std::to_string(check.violations.size()) +
                                          " VIOLATION(S)"});
  }
  std::fputs(args.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  if (tracing) {
    for (const trace::TraceViolation& violation : check.violations) {
      std::fprintf(stderr, "trace: %s\n", violation.ToString().c_str());
    }
    std::fprintf(stderr, "trace: %s\n", check.Summary().c_str());
  }
  if (!args.json_path.empty()) {
    harness::WriteResultJson(result, args.json_path);
  }
  if (args.config.analyze && !result.report.correct) return 1;
  if (tracing && !check.ok()) return 1;
  return 0;
}
