// o2pc_report — telemetry report pipeline.
//
// Reads one or more telemetry JSON files ("o2pc-telemetry-v1", written by
// `o2pc_campaign --telemetry-json` or `o2pc_sim --telemetry-json=`), merges
// them into one sweep summary, and renders outputs:
//
//   o2pc_report [--html FILE] [--json FILE] [--title T] [--check-coverage]
//               telemetry.json [more.json ...]
//
//   --html FILE        write the self-contained HTML report
//   --json FILE        write the merged telemetry JSON
//   --title T          report title (default "O2PC telemetry report")
//   --check-coverage   exit 3 if any gated coverage cell (ProtocolStep or
//                      fault-grammar production) has zero hits — the CI
//                      coverage gate
//
// With no --html/--json, prints a text summary (runs, coverage fingerprint,
// unhit cells) to stdout. Merging across files keeps counters and coverage
// exact; phase percentiles are re-estimated from the fixed-layout bucket
// histograms and flagged as approximate in the outputs.
//
// Exit codes: 0 ok; 1 unreadable/unparseable input; 2 merge conflict
// (e.g. mismatched bucket layouts); 3 coverage gate failed; 64 usage error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/report.h"

using namespace o2pc;

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  *out = text.str();
  return static_cast<bool>(in) || in.eof();
}

}  // namespace

int main(int argc, char** argv) {
  std::string html_path;
  std::string json_path;
  std::string title = "O2PC telemetry report";
  bool check_coverage = false;
  std::vector<std::string> inputs;

  // Flags take "--flag value" or "--flag=value".
  auto next_value = [&](int* i, const std::string& arg) -> std::string {
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) return arg.substr(eq + 1);
    if (*i + 1 < argc) return argv[++*i];
    std::fprintf(stderr, "%s needs a value\n", arg.c_str());
    std::exit(64);
  };
  auto is_flag = [](const std::string& arg, const char* name) {
    return arg == name || arg.rfind(std::string(name) + "=", 0) == 0;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (is_flag(arg, "--html")) {
      html_path = next_value(&i, arg);
    } else if (is_flag(arg, "--json")) {
      json_path = next_value(&i, arg);
    } else if (is_flag(arg, "--title")) {
      title = next_value(&i, arg);
    } else if (arg == "--check-coverage") {
      check_coverage = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 64;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: o2pc_report [--html FILE] [--json FILE] [--title T] "
                 "[--check-coverage] telemetry.json [more.json ...]\n");
    return 64;
  }

  telemetry::SweepTelemetry merged;
  bool have_first = false;
  for (const std::string& path : inputs) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
      return 1;
    }
    telemetry::SweepTelemetry one;
    std::string error;
    if (!telemetry::SweepTelemetry::FromJson(text, &one, &error)) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
    if (!have_first) {
      merged = std::move(one);
      have_first = true;
    } else if (!merged.Merge(one, &error)) {
      std::fprintf(stderr, "merging '%s': %s\n", path.c_str(), error.c_str());
      return 2;
    }
  }

  if (!json_path.empty() &&
      !telemetry::WriteTextFile(json_path, merged.ToJson())) {
    return 1;
  }
  if (!html_path.empty() &&
      !telemetry::WriteTextFile(html_path,
                                telemetry::RenderHtml(merged, title))) {
    return 1;
  }

  const std::vector<std::string> unhit = merged.coverage.UnhitCells();
  std::printf("runs: %llu (%zu input file%s)\n",
              static_cast<unsigned long long>(merged.runs), inputs.size(),
              inputs.size() == 1 ? "" : "s");
  std::printf("coverage fingerprint: %016llx\n",
              static_cast<unsigned long long>(merged.coverage.Fingerprint()));
  if (merged.approximate_percentiles) {
    std::printf("phase percentiles: bucket-estimated (cross-file merge)\n");
  }
  if (unhit.empty()) {
    std::printf("coverage: all gated cells hit\n");
  } else {
    for (const std::string& cell : unhit) {
      std::fprintf(stderr, "coverage: %s unhit\n", cell.c_str());
    }
  }
  if (!html_path.empty()) std::printf("html: %s\n", html_path.c_str());
  if (!json_path.empty()) std::printf("json: %s\n", json_path.c_str());

  if (check_coverage && !unhit.empty()) {
    std::fprintf(stderr, "coverage gate FAILED: %zu gated cell(s) unhit\n",
                 unhit.size());
    return 3;
  }
  return 0;
}
