// o2pc_campaign — randomized fault-campaign runner.
//
// Sweeps fleets of deterministic simulations under injected faults (site
// crashes pinned to protocol steps, partitions, message drops/delays,
// coordinator crashes), judging every run with the oracle battery: the
// trace invariant checker (I1-I7), the paper's serialization-graph
// criterion, the cross-site durability / in-doubt / conservation audit,
// and the crash-restart recovery oracle (complete recovery phases,
// WAL-replay equivalence with the live tables).
// Failing runs are written as replayable {seed, plan} artifacts and
// greedily shrunk to a minimal fault plan.
//
//   o2pc_campaign [--runs N] [--jobs N] [--seed S] [--protocol o2pc|2pc|both]
//                 [--templates a,b,...] [--sites N] [--txns N] [--locals N]
//                 [--abort-prob P] [--time-budget 120s]
//                 [--artifact-dir DIR] [--no-shrink] [--verbose]
//                 [--telemetry-json FILE] [--report FILE.html]
//                 [--duplicate-all[=K]]
//
// --duplicate-all runs the whole sweep under blanket at-least-once
// delivery: every message is delivered 1+K times (K defaults to 1).
// The oracle battery must stay clean — this is the idempotence
// acceptance gate run at volume.
//
// --telemetry-json / --report collect sweep telemetry (commit-phase
// latency profile, protocol/fault coverage map, gauge time-series) and
// write the machine-readable JSON / the self-contained HTML report. The
// telemetry JSON and the printed coverage fingerprint are byte-identical
// for every --jobs.
//
// --jobs N fans independent runs across N worker threads (0 = one per
// hardware thread). Artifacts, fingerprints, and failure reports are
// byte-identical for every job count; the printed sweep fingerprint makes
// that checkable from the command line.
//   o2pc_campaign --replay FILE     # replay an artifact twice, compare
//   o2pc_campaign --inject-bad      # self-test: known-bad plan is caught
//   o2pc_campaign --list-templates
//
// Flags accept both `--flag value` and `--flag=value`.
//
// Exit codes: 0 all runs passed (or the self-test caught the bad plan);
// 1 oracle violations (or self-test miss); 2 nondeterministic replay;
// 64 usage error.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/runner.h"
#include "campaign/shrink.h"
#include "telemetry/report.h"

using namespace o2pc;

namespace {

struct CliArgs {
  campaign::CampaignOptions options;
  std::string replay_path;
  std::string telemetry_json_path;
  std::string report_path;
  bool inject_bad = false;
  bool list_templates = false;
  bool verbose = false;
  bool ok = true;
};

/// Accepts "120", "120s", "2m"; returns seconds (<= 0 invalid).
double ParseTimeBudget(const std::string& text) {
  if (text.empty()) return -1;
  std::string digits = text;
  double scale = 1.0;
  if (digits.back() == 's') {
    digits.pop_back();
  } else if (digits.back() == 'm') {
    digits.pop_back();
    scale = 60.0;
  }
  try {
    return std::stod(digits) * scale;
  } catch (...) {
    return -1;
  }
}

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  // Flags take "--flag value" or "--flag=value".
  auto next_value = [&](int* i, const std::string& arg) -> std::string {
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) return arg.substr(eq + 1);
    if (*i + 1 < argc) return argv[++*i];
    std::fprintf(stderr, "%s needs a value\n", arg.c_str());
    args.ok = false;
    return "";
  };
  auto is_flag = [](const std::string& arg, const char* name) {
    return arg == name || arg.rfind(std::string(name) + "=", 0) == 0;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (is_flag(arg, "--runs")) {
      args.options.runs = std::atoi(next_value(&i, arg).c_str());
    } else if (is_flag(arg, "--jobs")) {
      args.options.jobs = std::atoi(next_value(&i, arg).c_str());
    } else if (is_flag(arg, "--seed")) {
      args.options.base_seed =
          std::strtoull(next_value(&i, arg).c_str(), nullptr, 10);
    } else if (is_flag(arg, "--sites")) {
      args.options.num_sites = std::atoi(next_value(&i, arg).c_str());
    } else if (is_flag(arg, "--txns")) {
      args.options.num_globals = std::atoi(next_value(&i, arg).c_str());
    } else if (is_flag(arg, "--locals")) {
      args.options.num_locals = std::atoi(next_value(&i, arg).c_str());
    } else if (is_flag(arg, "--abort-prob")) {
      args.options.vote_abort_probability =
          std::atof(next_value(&i, arg).c_str());
    } else if (is_flag(arg, "--templates")) {
      args.options.templates = SplitCsv(next_value(&i, arg));
    } else if (is_flag(arg, "--protocol")) {
      const std::string value = next_value(&i, arg);
      if (value == "o2pc") {
        args.options.protocols = {core::CommitProtocol::kOptimistic};
      } else if (value == "2pc") {
        args.options.protocols = {core::CommitProtocol::kTwoPhaseCommit};
      } else if (value == "both") {
        args.options.protocols = {core::CommitProtocol::kOptimistic,
                                  core::CommitProtocol::kTwoPhaseCommit};
      } else {
        std::fprintf(stderr, "unknown protocol '%s'\n", value.c_str());
        args.ok = false;
      }
    } else if (is_flag(arg, "--time-budget")) {
      const std::string value = next_value(&i, arg);
      args.options.time_budget_seconds = ParseTimeBudget(value);
      if (args.options.time_budget_seconds <= 0) {
        std::fprintf(stderr, "bad time budget '%s'\n", value.c_str());
        args.ok = false;
      }
    } else if (is_flag(arg, "--artifact-dir")) {
      args.options.artifact_dir = next_value(&i, arg);
    } else if (is_flag(arg, "--replay")) {
      args.replay_path = next_value(&i, arg);
    } else if (is_flag(arg, "--telemetry-json")) {
      args.telemetry_json_path = next_value(&i, arg);
      args.options.collect_telemetry = true;
    } else if (is_flag(arg, "--report")) {
      args.report_path = next_value(&i, arg);
      args.options.collect_telemetry = true;
    } else if (is_flag(arg, "--duplicate-all")) {
      // "--duplicate-all" alone means one extra copy; "=K" overrides.
      if (arg.find('=') != std::string::npos) {
        args.options.duplicate_copies = std::atoi(next_value(&i, arg).c_str());
        if (args.options.duplicate_copies < 1) {
          std::fprintf(stderr, "bad --duplicate-all count\n");
          args.ok = false;
        }
      } else {
        args.options.duplicate_copies = 1;
      }
    } else if (arg == "--no-shrink") {
      args.options.shrink_failures = false;
    } else if (arg == "--inject-bad") {
      args.inject_bad = true;
    } else if (arg == "--list-templates") {
      args.list_templates = true;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      args.ok = false;
    }
  }
  return args;
}

const char* ProtocolFlag(core::CommitProtocol protocol) {
  return protocol == core::CommitProtocol::kOptimistic ? "o2pc" : "2pc";
}

void PrintViolations(const campaign::OracleReport& oracle) {
  for (const std::string& violation : oracle.violations) {
    std::fprintf(stderr, "  %s\n", violation.c_str());
  }
}

/// --replay: run an artifact twice; fingerprints must match and the
/// oracle verdict is reported.
int Replay(const std::string& path) {
  campaign::CampaignRunConfig config;
  std::string error;
  if (!campaign::LoadArtifact(path, &config, &error)) {
    std::fprintf(stderr, "cannot load artifact: %s\n", error.c_str());
    return 64;
  }
  std::printf("replaying %s (protocol=%s seed=%llu, %zu fault events)\n",
              path.c_str(), ProtocolFlag(config.protocol),
              static_cast<unsigned long long>(config.seed),
              config.plan.events.size());
  const campaign::CampaignRunResult first = campaign::RunOne(config);
  const campaign::CampaignRunResult second = campaign::RunOne(config);
  std::printf("fingerprint run1=%016llx run2=%016llx (%s)\n",
              static_cast<unsigned long long>(first.fingerprint),
              static_cast<unsigned long long>(second.fingerprint),
              first.fingerprint == second.fingerprint ? "deterministic"
                                                      : "NONDETERMINISTIC");
  if (first.fingerprint != second.fingerprint ||
      first.journal != second.journal) {
    std::fprintf(stderr, "replay divergence: journals differ\n");
    return 2;
  }
  std::printf(
      "committed=%llu aborted=%llu compensations=%llu site_crashes=%llu "
      "coordinator_crashes=%llu dropped=%llu faults=%d makespan_us=%lld\n",
      static_cast<unsigned long long>(first.committed),
      static_cast<unsigned long long>(first.aborted),
      static_cast<unsigned long long>(first.compensations),
      static_cast<unsigned long long>(first.site_crashes),
      static_cast<unsigned long long>(first.coordinator_crashes),
      static_cast<unsigned long long>(first.messages_dropped),
      first.faults_triggered, static_cast<long long>(first.makespan));
  if (!first.recovery_windows.empty()) {
    std::printf("recovery timeline (%zu crash(es)):\n",
                first.recovery_windows.size());
    for (const campaign::RecoveryWindow& window : first.recovery_windows) {
      if (window.begin == 0) {
        std::printf("  site %lld: crash @%lldus, never recovered\n",
                    static_cast<long long>(window.site),
                    static_cast<long long>(window.crash_time));
      } else if (window.end == 0) {
        std::printf(
            "  site %lld: crash @%lldus, recovery began @%lldus "
            "(%lld in-doubt), superseded by a re-crash\n",
            static_cast<long long>(window.site),
            static_cast<long long>(window.crash_time),
            static_cast<long long>(window.begin),
            static_cast<long long>(window.in_doubt));
      } else {
        std::printf(
            "  site %lld: crash @%lldus, recovery %lldus..%lldus, "
            "%lld in-doubt, %lld left to termination\n",
            static_cast<long long>(window.site),
            static_cast<long long>(window.crash_time),
            static_cast<long long>(window.begin),
            static_cast<long long>(window.end),
            static_cast<long long>(window.in_doubt),
            static_cast<long long>(window.unresolved));
      }
    }
  }
  if (!first.ok()) {
    std::printf("oracle violations (%zu):\n", first.oracle.violations.size());
    PrintViolations(first.oracle);
    return 1;
  }
  std::printf("oracles: ok\n");
  return 0;
}

/// --inject-bad: self-test that the oracle battery catches a deliberately
/// lethal plan and that shrinking strips its noise events.
int InjectBad(const campaign::CampaignOptions& options) {
  campaign::CampaignRunConfig config;
  config.protocol = core::CommitProtocol::kOptimistic;
  config.seed = options.base_seed;
  config.num_sites = options.num_sites;
  config.keys_per_site = options.keys_per_site;
  config.num_globals = options.num_globals;
  config.num_locals = options.num_locals;
  config.vote_abort_probability = options.vote_abort_probability;
  config.template_name = "known_bad";
  config.plan = campaign::KnownBadPlan(config.num_sites);

  const campaign::CampaignRunResult result = campaign::RunOne(config);
  if (result.ok()) {
    std::fprintf(stderr,
                 "self-test FAILED: known-bad plan passed the oracles\n");
    return 1;
  }
  std::printf("known-bad plan detected (%zu violations):\n",
              result.oracle.violations.size());
  PrintViolations(result.oracle);

  const campaign::ShrinkResult shrunk = campaign::ShrinkFaultPlan(config);
  std::printf("shrunk %zu -> %zu fault events in %d runs:\n%s",
              config.plan.events.size(), shrunk.plan.events.size(),
              shrunk.runs_used, shrunk.plan.ToString().c_str());
  if (shrunk.plan.events.size() > 2) {
    std::fprintf(stderr, "self-test FAILED: shrink left %zu events (> 2)\n",
                 shrunk.plan.events.size());
    return 1;
  }
  if (!options.artifact_dir.empty()) {
    campaign::CampaignRunConfig artifact = config;
    artifact.plan = shrunk.plan;
    const std::string path =
        campaign::WriteArtifact(artifact, options.artifact_dir);
    if (!path.empty()) std::printf("artifact: %s\n", path.c_str());
  }
  std::printf("self-test ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = Parse(argc, argv);
  if (!args.ok) return 64;

  if (args.list_templates) {
    for (const std::string& name : campaign::DefaultTemplateNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (!args.replay_path.empty()) return Replay(args.replay_path);
  if (args.inject_bad) return InjectBad(args.options);

  const campaign::CampaignReport report =
      campaign::RunCampaign(args.options, args.verbose);
  std::printf("campaign: %d/%d runs completed%s, %d failed, %llu faults "
              "injected\n",
              report.runs_completed, args.options.runs,
              report.budget_exhausted ? " (time budget hit)" : "",
              report.runs_failed,
              static_cast<unsigned long long>(report.total_faults_triggered));
  std::printf("sweep fingerprint: %016llx (%zu journals; identical for "
              "every --jobs)\n",
              static_cast<unsigned long long>(report.CombinedFingerprint()),
              report.fingerprints.size());
  if (report.telemetry_collected) {
    std::printf(
        "coverage fingerprint: %016llx\n",
        static_cast<unsigned long long>(report.telemetry.coverage.Fingerprint()));
    for (const std::string& cell : report.telemetry.coverage.UnhitCells()) {
      std::fprintf(stderr, "coverage: %s unhit\n", cell.c_str());
    }
    if (!args.telemetry_json_path.empty() &&
        !telemetry::WriteTextFile(args.telemetry_json_path,
                                  report.telemetry.ToJson())) {
      return 64;
    }
    if (!args.report_path.empty() &&
        !telemetry::WriteTextFile(
            args.report_path,
            telemetry::RenderHtml(report.telemetry, "O2PC fault campaign"))) {
      return 64;
    }
    if (!args.telemetry_json_path.empty()) {
      std::printf("telemetry json: %s\n", args.telemetry_json_path.c_str());
    }
    if (!args.report_path.empty()) {
      std::printf("report: %s\n", args.report_path.c_str());
    }
  }
  for (const campaign::CampaignFailure& failure : report.failures) {
    std::fprintf(stderr,
                 "FAIL seed=%llu template=%s protocol=%s (%zu violations)\n",
                 static_cast<unsigned long long>(failure.config.seed),
                 failure.config.template_name.c_str(),
                 ProtocolFlag(failure.config.protocol),
                 failure.oracle.violations.size());
    PrintViolations(failure.oracle);
    std::fprintf(stderr, "minimal plan (%zu events):\n%s",
                 failure.shrunk_plan.events.size(),
                 failure.shrunk_plan.ToString().c_str());
    if (!failure.artifact_path.empty()) {
      std::fprintf(stderr, "artifact: %s\n", failure.artifact_path.c_str());
    }
  }
  return report.failures.empty() ? 0 : 1;
}
