// Saga mode — the paper's §4 closing remark made concrete.
//
// "The loss of serializability would not be worrisome if sagas, or their
// generalization — multi-transactions — are used. Then the O2PC scheme can
// be employed as it was presented so far, without any further adjustments."
//
// This demo runs the same abort-heavy contended workload twice:
//   * ungoverned O2PC (a saga framework's view: semantic atomicity is
//     enough) — fast, but the recorded history violates the paper's
//     serializability-like criterion, and the oracle shows the concrete
//     regular cycle;
//   * O2PC governed by P1 — the criterion holds, at the price of
//     rejections and restarts.
//
//   ./examples/saga_mode

#include <cstdio>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "metrics/table.h"

using namespace o2pc;

namespace {

harness::RunResult Run(core::GovernancePolicy governance,
                       std::uint64_t seed) {
  harness::ExperimentConfig config;
  config.label = core::GovernancePolicyName(governance);
  config.system.num_sites = 3;
  config.system.keys_per_site = 8;  // hot keys: real interleavings
  config.system.seed = seed;
  config.system.protocol.protocol = core::CommitProtocol::kOptimistic;
  config.system.protocol.governance = governance;
  config.workload.num_global_txns = 60;
  config.workload.num_local_txns = 60;
  config.workload.ops_per_subtxn = 3;
  config.workload.vote_abort_probability = 0.25;
  config.workload.zipf_theta = 0.9;
  config.workload.mean_global_interarrival = Millis(1);
  config.workload.mean_local_interarrival = Millis(1);
  config.workload.seed = seed * 31 + 7;
  config.analyze = true;
  return harness::RunExperiment(config);
}

}  // namespace

int main() {
  std::printf(
      "Saga mode vs governed O2PC on an abort-heavy contended workload\n"
      "(60 global + 60 local txns, 3 sites, 8 hot keys, 25%% abort "
      "votes)\n\n");

  // Scan a few seeds: the saga run keeps semantic atomicity but sooner or
  // later records a regular cycle; P1 never does.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    harness::RunResult saga = Run(core::GovernancePolicy::kNone, seed);
    harness::RunResult governed = Run(core::GovernancePolicy::kP1, seed);

    metrics::TablePrinter table({"", "saga (ungoverned)", "O2PC + P1"});
    table.AddRow({"committed", std::to_string(saga.committed),
                  std::to_string(governed.committed)});
    table.AddRow({"compensations", std::to_string(saga.compensations),
                  std::to_string(governed.compensations)});
    table.AddRow({"R1 rejections", std::to_string(saga.r1_rejections),
                  std::to_string(governed.r1_rejections)});
    table.AddRow({"regular cycles",
                  saga.report.has_regular_cycle ? "YES" : "no",
                  governed.report.has_regular_cycle ? "YES" : "no"});
    table.AddRow({"criterion", saga.report.correct ? "holds" : "VIOLATED",
                  governed.report.correct ? "holds" : "VIOLATED"});
    std::printf("seed %llu\n%s", static_cast<unsigned long long>(seed),
                table.ToString().c_str());
    if (saga.report.witness) {
      std::printf("  saga's regular cycle: %s\n",
                  saga.report.witness->ToString().c_str());
    }
    std::printf("\n");
    if (!governed.report.correct) return 1;  // must never happen
    if (saga.report.has_regular_cycle) {
      std::printf(
          "The saga run above kept semantic atomicity (every aborted\n"
          "transaction was compensated) yet interleaved other work between\n"
          "a transaction and its compensation inconsistently across sites\n"
          "— invisible to a saga framework, caught by the paper's "
          "criterion.\n");
      return 0;
    }
  }
  std::printf("no seed exhibited a regular cycle this time\n");
  return 0;
}
