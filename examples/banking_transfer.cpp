// Inter-bank funds transfers under O2PC — the restricted transaction model
// in action.
//
// Four autonomous banks process a stream of transfers. Some transfers are
// refused by the receiving bank (abort votes); the already-exposed debits
// are compensated. The demo audits:
//   * conservation: total money in the system never changes;
//   * semantic atomicity: every aborted transfer is fully compensated;
//   * the §5 correctness criterion over the whole recorded history.
//
//   ./examples/banking_transfer

#include <cstdio>

#include "common/rng.h"
#include "core/system.h"
#include "metrics/table.h"
#include "workload/scenarios.h"

using namespace o2pc;

int main() {
  core::SystemOptions options;
  options.num_sites = 4;       // four banks
  options.keys_per_site = 32;  // 32 accounts each
  options.initial_value = 10'000;
  options.protocol.protocol = core::CommitProtocol::kOptimistic;
  options.protocol.governance = core::GovernancePolicy::kP1;
  options.seed = 2026;
  core::DistributedSystem system(options);

  const Value total_before = system.TotalValue();
  std::printf("four banks, 32 accounts each, %lld money units total\n\n",
              static_cast<long long>(total_before));

  // A stream of 60 transfers; roughly one in five is refused by the
  // receiving bank (insufficient compliance, closed account, ... — the
  // receiving site exercises its autonomy and votes abort).
  Rng rng(7);
  int committed = 0;
  int aborted = 0;
  int compensations = 0;
  SimTime arrival = 0;
  for (int i = 0; i < 60; ++i) {
    const SiteId from = static_cast<SiteId>(rng.Uniform(0, 3));
    SiteId to = static_cast<SiteId>(rng.Uniform(0, 3));
    while (to == from) to = static_cast<SiteId>(rng.Uniform(0, 3));
    const DataKey from_account = static_cast<DataKey>(rng.Uniform(0, 31));
    const DataKey to_account = static_cast<DataKey>(rng.Uniform(0, 31));
    const Value amount = rng.Uniform(10, 500);

    core::GlobalTxnSpec spec =
        workload::MakeTransfer(from, from_account, to, to_account, amount);
    if (rng.Bernoulli(0.2)) spec.subtxns[1].force_abort_vote = true;

    arrival += static_cast<Duration>(rng.Exponential(3000.0));
    system.simulator().ScheduleAt(
        arrival,
        [&system, spec, &committed, &aborted, &compensations]() mutable {
          system.SubmitGlobal(spec, [&](const core::GlobalResult& r) {
            if (r.committed) {
              ++committed;
            } else {
              ++aborted;
            }
            compensations += r.compensations;
          });
        });
  }
  system.Run();

  metrics::TablePrinter table({"metric", "value"});
  table.AddRow({"transfers committed", std::to_string(committed)});
  table.AddRow({"transfers aborted", std::to_string(aborted)});
  table.AddRow({"compensating subtransactions",
                std::to_string(compensations)});
  table.AddRow({"deadlock restarts",
                std::to_string(system.stats().Count("global_restarts"))});
  table.AddRow({"total before", std::to_string(total_before)});
  table.AddRow({"total after", std::to_string(system.TotalValue())});
  std::printf("%s\n", table.ToString().c_str());

  const bool conserved = system.TotalValue() == total_before;
  std::printf("conservation invariant: %s\n",
              conserved ? "HOLDS" : "VIOLATED");

  sg::CorrectnessReport report = system.Analyze();
  std::printf("history analysis: %s\n", report.Summary().c_str());
  return (conserved && report.correct) ? 0 : 1;
}
