// The blocking demonstration — the problem statement of the paper's §1.
//
// A coordinator crashes after logging its decision and recovers 2 seconds
// later. Under 2PC, the participants sit in the *prepared* state holding
// exclusive locks for the entire outage: every conflicting transaction
// (even purely local ones!) queues behind them. Under O2PC the
// participants locally committed at vote time, so local traffic sails
// through the outage untouched.
//
//   ./examples/coordinator_failure

#include <cstdio>

#include "common/string_util.h"
#include "core/system.h"
#include "metrics/histogram.h"
#include "metrics/table.h"
#include "workload/scenarios.h"

using namespace o2pc;

namespace {

struct OutageResult {
  double max_xlock_hold_ms = 0;
  double max_local_latency_ms = 0;
  int locals_finished_during_outage = 0;
};

OutageResult RunOutage(core::CommitProtocol protocol) {
  core::SystemOptions options;
  options.num_sites = 2;
  options.keys_per_site = 8;
  options.protocol.protocol = protocol;
  options.protocol.coordinator_crash_probability = 1.0;  // always crash
  options.protocol.coordinator_recovery_delay = Seconds(2);
  options.protocol.resend_timeout = Seconds(10);
  core::DistributedSystem system(options);

  // The doomed-to-be-delayed global transaction on accounts 1 and 2.
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10));

  // Local traffic on the same accounts, arriving during the outage.
  OutageResult result;
  std::vector<SimTime> submit_times;
  for (int i = 0; i < 20; ++i) {
    const SimTime when = Millis(100) + i * Millis(50);
    system.simulator().ScheduleAt(when, [&system, &result, when] {
      system.SubmitLocal(
          0,
          {local::Operation{local::OpType::kIncrement, 1, 1},
           local::Operation{local::OpType::kIncrement, 2, -1}},
          [&result, when, &system](bool ok) {
            if (!ok) return;
            const double latency_ms =
                static_cast<double>(system.simulator().Now() - when) / 1000.0;
            result.max_local_latency_ms =
                std::max(result.max_local_latency_ms, latency_ms);
            if (system.simulator().Now() < Seconds(2)) {
              ++result.locals_finished_during_outage;
            }
          });
    });
  }
  system.Run();

  for (int i = 0; i < options.num_sites; ++i) {
    for (Duration d : system.db(static_cast<SiteId>(i))
                          .lock_manager()
                          .stats()
                          .exclusive_hold) {
      result.max_xlock_hold_ms = std::max(
          result.max_xlock_hold_ms, static_cast<double>(d) / 1000.0);
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf(
      "coordinator crashes after logging its decision; recovers after 2s\n"
      "20 local transactions on the same accounts arrive during the "
      "outage\n\n");

  const OutageResult res_2pc = RunOutage(core::CommitProtocol::kTwoPhaseCommit);
  const OutageResult res_o2pc = RunOutage(core::CommitProtocol::kOptimistic);

  metrics::TablePrinter table(
      {"protocol", "max X-lock hold", "max local latency",
       "locals done during outage (of 20)"});
  table.AddRow({"2PC", StrCat(FormatDouble(res_2pc.max_xlock_hold_ms, 1),
                              "ms"),
                StrCat(FormatDouble(res_2pc.max_local_latency_ms, 1), "ms"),
                std::to_string(res_2pc.locals_finished_during_outage)});
  table.AddRow({"O2PC", StrCat(FormatDouble(res_o2pc.max_xlock_hold_ms, 1),
                               "ms"),
                StrCat(FormatDouble(res_o2pc.max_local_latency_ms, 1), "ms"),
                std::to_string(res_o2pc.locals_finished_during_outage)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "2PC blocks conflicting local work for the whole outage;\n"
      "O2PC released its locks at vote time and is unaffected.\n");
  return res_o2pc.locals_finished_during_outage >
                 res_2pc.locals_finished_during_outage
             ? 0
             : 1;
}
