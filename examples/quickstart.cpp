// Quickstart: a three-site distributed database running the O2PC protocol.
//
// Shows the public API end to end: configure a system, submit a global
// transaction, watch it commit; then force an abort vote and watch the
// exposed subtransaction being compensated (semantic atomicity).
//
//   ./examples/quickstart

#include <cstdio>

#include "core/system.h"
#include "workload/scenarios.h"

using namespace o2pc;

namespace {

void PrintBalances(core::DistributedSystem& system, const char* when) {
  std::printf("%-28s site0/acct1=%lld  site1/acct2=%lld\n", when,
              static_cast<long long>(system.db(0).table().Get(1)->value),
              static_cast<long long>(system.db(1).table().Get(2)->value));
}

}  // namespace

int main() {
  // 1. Configure a three-site system running O2PC governed by protocol P1.
  core::SystemOptions options;
  options.num_sites = 3;
  options.keys_per_site = 16;    // accounts 0..15 at each site
  options.initial_value = 1000;  // every account starts with 1000
  options.protocol.protocol = core::CommitProtocol::kOptimistic;
  options.protocol.governance = core::GovernancePolicy::kP1;
  core::DistributedSystem system(options);

  PrintBalances(system, "initial state:");

  // 2. A global transaction: transfer 250 from site 0 to site 1.
  system.SubmitGlobal(
      workload::MakeTransfer(/*from_site=*/0, /*from_account=*/1,
                             /*to_site=*/1, /*to_account=*/2,
                             /*amount=*/250),
      [](const core::GlobalResult& result) {
        std::printf("transfer #1: %s in %lldus (%d sites)\n",
                    result.committed ? "COMMITTED" : "ABORTED",
                    static_cast<long long>(result.finish_time -
                                           result.submit_time),
                    result.num_sites);
      });
  system.Run();
  PrintBalances(system, "after commit:");

  // 3. The same transfer, but the credit site votes ABORT. Under O2PC the
  //    debit site has already locally committed (locks long released), so
  //    its effects are undone *semantically* by a compensating
  //    subtransaction.
  core::GlobalTxnSpec failing = workload::MakeTransfer(0, 1, 1, 2, 250);
  failing.subtxns[1].force_abort_vote = true;
  system.SubmitGlobal(failing, [](const core::GlobalResult& result) {
    std::printf("transfer #2: %s, compensating subtransactions run: %d\n",
                result.committed ? "COMMITTED" : "ABORTED",
                result.compensations);
  });
  system.Run();
  PrintBalances(system, "after compensation:");

  // 4. The post-run correctness oracle: the recorded history satisfies the
  //    paper's criterion (no regular cycles) and atomicity of compensation.
  sg::CorrectnessReport report = system.Analyze();
  std::printf("history analysis: %s\n", report.Summary().c_str());
  return report.correct ? 0 : 1;
}
