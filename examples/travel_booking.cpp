// Multi-agency travel booking — the paper's multidatabase motivation.
//
// Three autonomous (and competing) agencies: an airline, a hotel chain and
// a car-rental company. A trip booking is a global transaction decrementing
// one inventory unit at each agency. Under plain 2PC a slow coordinator
// from a *competing* organization would leave the agencies' inventories
// locked; under O2PC each agency locally commits and regains full control
// the moment it votes.
//
// The demo also shows the two refinements of §2/§6:
//   * ticket printing is a *real action*: the airline keeps its locks and
//     prints only on a commit decision;
//   * marking protocol P1 rejects a booking that would mix sites undone
//     w.r.t. a cancelled trip with sites that are not, preserving the
//     correctness criterion.
//
//   ./examples/travel_booking

#include <cstdio>

#include "core/system.h"
#include "workload/scenarios.h"

using namespace o2pc;

namespace {

constexpr SiteId kAirline = 0;
constexpr SiteId kHotel = 1;
constexpr SiteId kCars = 2;
constexpr DataKey kFlight = 1;  // seats on flight 1
constexpr DataKey kRoom = 2;    // rooms in hotel block 2
constexpr DataKey kCar = 3;     // cars in class 3

void PrintInventory(core::DistributedSystem& system, const char* when) {
  std::printf("%-26s seats=%lld rooms=%lld cars=%lld tickets printed=%llu\n",
              when,
              static_cast<long long>(
                  system.db(kAirline).table().Get(kFlight)->value),
              static_cast<long long>(
                  system.db(kHotel).table().Get(kRoom)->value),
              static_cast<long long>(
                  system.db(kCars).table().Get(kCar)->value),
              static_cast<unsigned long long>(
                  system.db(kAirline).real_actions_performed()));
}

}  // namespace

int main() {
  core::SystemOptions options;
  options.num_sites = 3;
  options.keys_per_site = 8;
  options.initial_value = 50;  // 50 units of each inventory
  options.protocol.protocol = core::CommitProtocol::kOptimistic;
  options.protocol.governance = core::GovernancePolicy::kP1;
  core::DistributedSystem system(options);

  PrintInventory(system, "initial inventory:");

  // Booking 1: succeeds; the ticket (real action) prints at the decision.
  system.SubmitGlobal(
      workload::MakeTripBooking(kAirline, kFlight, kHotel, kRoom, kCars,
                                kCar, /*print_ticket=*/true),
      [](const core::GlobalResult& r) {
        std::printf("booking #1 (with ticket): %s\n",
                    r.committed ? "COMMITTED" : "ABORTED");
      });
  system.Run();
  PrintInventory(system, "after booking #1:");

  // Booking 2: the car agency is sold out of goodwill and votes abort.
  // The airline and hotel have already released their locks (and their
  // inventories were visible to other customers in the meantime); their
  // decrements are compensated back. No ticket is printed.
  core::GlobalTxnSpec failing = workload::MakeTripBooking(
      kAirline, kFlight, kHotel, kRoom, kCars, kCar, /*print_ticket=*/true);
  failing.subtxns[2].force_abort_vote = true;
  system.SubmitGlobal(failing, [](const core::GlobalResult& r) {
    std::printf("booking #2 (cars refuse): %s, %d compensations\n",
                r.committed ? "COMMITTED" : "ABORTED", r.compensations);
  });
  system.Run();
  PrintInventory(system, "after cancelled booking:");

  // Concurrent bookings while the cancellation's marks are still in force:
  // P1 may reject and retry, but every outcome satisfies the criterion.
  for (int i = 0; i < 5; ++i) {
    system.SubmitGlobal(workload::MakeTripBooking(
        kAirline, kFlight, kHotel, kRoom, kCars, kCar,
        /*print_ticket=*/false));
  }
  system.Run();
  PrintInventory(system, "after 5 more bookings:");

  std::printf("R1 rejections along the way: %llu\n",
              static_cast<unsigned long long>(
                  system.stats().Count("r1_rejections")));
  sg::CorrectnessReport report = system.Analyze();
  std::printf("history analysis: %s\n", report.Summary().c_str());
  return report.correct ? 0 : 1;
}
